//! The record-correlation join index.
//!
//! "It turns out that if the data sources are really heterogeneous, the
//! probability that they have a reliable join key is pretty small. Our
//! system worked by creating and storing what was essentially a join index
//! between the sources." (Draper §5)
//!
//! Matching uses trigram Dice similarity over normalized strings with
//! first-token blocking, and the resulting `(left key, right key, score)`
//! pairs are stored so later joins are plain index lookups.

use std::collections::{HashMap, HashSet};

use eii_data::{Batch, EiiError, Result, Row, Schema, SchemaRef, Value};

/// Normalize a name-ish string: lowercase, collapse whitespace, strip
/// punctuation.
fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    out.trim_end().to_string()
}

fn trigrams(s: &str) -> HashSet<[u8; 3]> {
    let padded: Vec<u8> = std::iter::repeat_n(b' ', 2)
        .chain(s.bytes())
        .chain(std::iter::repeat_n(b' ', 2))
        .collect();
    padded
        .windows(3)
        .map(|w| [w[0], w[1], w[2]])
        .collect()
}

/// Trigram Dice similarity of two strings after normalization, in [0, 1].
pub fn similarity(a: &str, b: &str) -> f64 {
    let (a, b) = (normalize(a), normalize(b));
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let (ta, tb) = (trigrams(&a), trigrams(&b));
    let inter = ta.intersection(&tb).count();
    2.0 * inter as f64 / (ta.len() + tb.len()) as f64
}

/// One stored correspondence.
#[derive(Debug, Clone, PartialEq)]
pub struct Correspondence {
    /// Join key on the left relation.
    pub left_key: Value,
    /// Join key on the right relation.
    pub right_key: Value,
    /// Similarity score that matched the pair, in `[0, 1]`.
    pub score: f64,
}

/// A persisted join index between two relations that lack a shared key.
#[derive(Debug, Clone, Default)]
pub struct CorrelationIndex {
    pairs: Vec<Correspondence>,
    by_left: HashMap<Value, Vec<usize>>,
    /// Candidate pairs the blocking pass examined (build-effort metric).
    pub candidates_scored: usize,
}

impl CorrelationIndex {
    /// Build the index by fuzzy-matching `left_match_col` against
    /// `right_match_col`, keeping pairs scoring at least `threshold`.
    /// Keys (`*_key_col`) identify the rows in later joins.
    ///
    /// Blocking: only rows sharing a normalized first token are compared,
    /// keeping the build subquadratic on realistic name data.
    pub fn build(
        left: &Batch,
        left_key_col: &str,
        left_match_col: &str,
        right: &Batch,
        right_key_col: &str,
        right_match_col: &str,
        threshold: f64,
    ) -> Result<CorrelationIndex> {
        let lk = left.schema().index_of(None, left_key_col)?;
        let lm = left.schema().index_of(None, left_match_col)?;
        let rk = right.schema().index_of(None, right_key_col)?;
        let rm = right.schema().index_of(None, right_match_col)?;

        // Block the right side by first token.
        let mut blocks: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, row) in right.rows().iter().enumerate() {
            if let Some(s) = row.get(rm).as_str() {
                let norm = normalize(s);
                if let Some(tok) = norm.split(' ').next() {
                    blocks.entry(tok.to_string()).or_default().push(i);
                }
            }
        }

        let mut index = CorrelationIndex::default();
        for lrow in left.rows() {
            let Some(ltext) = lrow.get(lm).as_str() else {
                continue;
            };
            let norm = normalize(ltext);
            let Some(tok) = norm.split(' ').next() else {
                continue;
            };
            if let Some(cands) = blocks.get(tok) {
                for &ri in cands {
                    let rrow = &right.rows()[ri];
                    let Some(rtext) = rrow.get(rm).as_str() else {
                        continue;
                    };
                    index.candidates_scored += 1;
                    let score = similarity(ltext, rtext);
                    if score >= threshold {
                        index.push(Correspondence {
                            left_key: lrow.get(lk).clone(),
                            right_key: rrow.get(rk).clone(),
                            score,
                        });
                    }
                }
            }
        }
        Ok(index)
    }

    /// Like [`CorrelationIndex::build`], but keep only each left record's
    /// single best-scoring correspondence (what a curated join index stores
    /// in practice: "this CRM account *is* that support account").
    #[allow(clippy::too_many_arguments)]
    pub fn build_best_match(
        left: &Batch,
        left_key_col: &str,
        left_match_col: &str,
        right: &Batch,
        right_key_col: &str,
        right_match_col: &str,
        threshold: f64,
    ) -> Result<CorrelationIndex> {
        let full = CorrelationIndex::build(
            left,
            left_key_col,
            left_match_col,
            right,
            right_key_col,
            right_match_col,
            threshold,
        )?;
        let mut best: std::collections::HashMap<Value, Correspondence> =
            std::collections::HashMap::new();
        for c in full.pairs {
            match best.get(&c.left_key) {
                Some(prev) if prev.score >= c.score => {}
                _ => {
                    best.insert(c.left_key.clone(), c);
                }
            }
        }
        let mut index = CorrelationIndex {
            candidates_scored: full.candidates_scored,
            ..CorrelationIndex::default()
        };
        let mut pairs: Vec<Correspondence> = best.into_values().collect();
        pairs.sort_by(|a, b| a.left_key.cmp(&b.left_key));
        for c in pairs {
            index.push(c);
        }
        Ok(index)
    }

    fn push(&mut self, c: Correspondence) {
        self.by_left
            .entry(c.left_key.clone())
            .or_default()
            .push(self.pairs.len());
        self.pairs.push(c);
    }

    /// All stored correspondences.
    pub fn pairs(&self) -> &[Correspondence] {
        &self.pairs
    }

    /// Number of stored correspondences.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Right keys correlated with a left key.
    pub fn lookup(&self, left_key: &Value) -> Vec<&Correspondence> {
        self.by_left
            .get(left_key)
            .map(|ixs| ixs.iter().map(|&i| &self.pairs[i]).collect())
            .unwrap_or_default()
    }

    /// Join two batches through the index: for every stored correspondence,
    /// concatenate the matching rows (plus a trailing `score` column).
    pub fn join(
        &self,
        left: &Batch,
        left_key_col: &str,
        right: &Batch,
        right_key_col: &str,
    ) -> Result<Batch> {
        let lk = left.schema().index_of(None, left_key_col)?;
        let rk = right.schema().index_of(None, right_key_col)?;
        let mut right_by_key: HashMap<&Value, Vec<&Row>> = HashMap::new();
        for row in right.rows() {
            right_by_key.entry(row.get(rk)).or_default().push(row);
        }
        let mut fields = left.schema().join(right.schema()).fields().to_vec();
        fields.push(eii_data::Field::new("match_score", eii_data::DataType::Float));
        let schema: SchemaRef = std::sync::Arc::new(Schema::new(fields));
        let mut rows = Vec::new();
        for lrow in left.rows() {
            for c in self.lookup(lrow.get(lk)) {
                if let Some(rrows) = right_by_key.get(&c.right_key) {
                    for rrow in rrows {
                        let mut row = lrow.concat(rrow);
                        row.push(Value::Float(c.score));
                        rows.push(row);
                    }
                }
            }
        }
        Batch::try_new(schema, rows).map_err(|e| EiiError::Internal(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field};
    use std::sync::Arc;

    fn crm() -> Batch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
        ]));
        Batch::new(
            schema,
            vec![
                row![1i64, "Acme Corporation"],
                row![2i64, "Globex Inc."],
                row![3i64, "Initech LLC"],
            ],
        )
    }

    fn support() -> Batch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("ticket", DataType::Int),
            Field::new("company", DataType::Str),
        ]));
        Batch::new(
            schema,
            vec![
                row![100i64, "ACME Corp"],
                row![101i64, "globex incorporated"],
                row![102i64, "Umbrella Co"],
                row![103i64, "acme corporation ltd"],
            ],
        )
    }

    #[test]
    fn similarity_behaves() {
        assert_eq!(similarity("Acme Corp", "acme corp"), 1.0);
        assert!(similarity("Acme Corporation", "ACME Corp") > 0.5);
        assert!(similarity("Acme", "Globex") < 0.2);
        assert_eq!(similarity("", "x"), 0.0);
    }

    #[test]
    fn build_finds_fuzzy_matches() {
        let ix = CorrelationIndex::build(
            &crm(),
            "id",
            "name",
            &support(),
            "ticket",
            "company",
            0.45,
        )
        .unwrap();
        // Acme matches tickets 100 and 103; Globex matches 101.
        let acme: Vec<_> = ix.lookup(&Value::Int(1));
        assert_eq!(acme.len(), 2, "pairs: {:?}", ix.pairs());
        assert_eq!(ix.lookup(&Value::Int(2)).len(), 1);
        assert!(ix.lookup(&Value::Int(3)).is_empty(), "Initech matches nothing");
    }

    #[test]
    fn blocking_limits_comparisons() {
        let ix = CorrelationIndex::build(
            &crm(),
            "id",
            "name",
            &support(),
            "ticket",
            "company",
            0.45,
        )
        .unwrap();
        // 3x4 = 12 unblocked comparisons; blocking on the first token
        // ("acme"/"globex"/"initech") leaves only same-token candidates.
        assert!(ix.candidates_scored < 12, "scored {}", ix.candidates_scored);
    }

    #[test]
    fn join_through_index_appends_score() {
        let ix = CorrelationIndex::build(
            &crm(),
            "id",
            "name",
            &support(),
            "ticket",
            "company",
            0.45,
        )
        .unwrap();
        let joined = ix.join(&crm(), "id", &support(), "ticket").unwrap();
        assert_eq!(joined.num_rows(), 3);
        let last = joined.schema().len() - 1;
        assert!(joined
            .rows()
            .iter()
            .all(|r| r.get(last).as_float().unwrap() >= 0.45));
    }

    #[test]
    fn exact_equijoin_would_find_nothing() {
        // The punchline: these sources share no computable key.
        let left = crm();
        let right = support();
        let mut exact = 0;
        for l in left.rows() {
            for r in right.rows() {
                if l.get(1) == r.get(1) {
                    exact += 1;
                }
            }
        }
        assert_eq!(exact, 0);
    }

    #[test]
    fn best_match_keeps_one_pair_per_left_record() {
        let ix = CorrelationIndex::build_best_match(
            &crm(),
            "id",
            "name",
            &support(),
            "ticket",
            "company",
            0.45,
        )
        .unwrap();
        // Acme had two candidates (tickets 100 and 103); only the better
        // survives.
        assert_eq!(ix.lookup(&Value::Int(1)).len(), 1);
        assert_eq!(ix.lookup(&Value::Int(2)).len(), 1);
        assert!(ix.lookup(&Value::Int(3)).is_empty());
    }

    #[test]
    fn threshold_one_keeps_only_exact() {
        let ix = CorrelationIndex::build(
            &crm(),
            "id",
            "name",
            &support(),
            "ticket",
            "company",
            1.0,
        )
        .unwrap();
        assert!(ix.is_empty());
    }
}
