//! Incremental view maintenance: delta propagation through a view's
//! operator tree.
//!
//! The engine consumes the base tables' change logs (the same logs the
//! result cache's watermark verification reads) as **weighted delta
//! batches** — z-sets of `(row, weight)` pairs where an insert carries
//! weight `+1`, a delete `-1`, and an update a retract/insert pair — and
//! pushes them through a state tree mirroring the view's optimized logical
//! plan:
//!
//! - **Scan** re-applies the scan's pushed filters and projection to each
//!   changed base row, so deltas enter the pipeline already shaped like the
//!   scan's output.
//! - **Filter / Project / Alias / UnionAll** are stateless: they distribute
//!   over weighted union row by row.
//! - **Join** (inner, semi-naive): keeps both input relations as
//!   equi-key-indexed multisets and computes
//!   `ΔL ⋈ R_old  ∪  (L_old ∪ ΔL) ⋈ ΔR`, multiplying weights. Rows whose
//!   evaluated key contains a NULL are skipped on both the probe and the
//!   state side — NULL keys never join, exactly like the executor's hash
//!   join. Non-equi conjuncts evaluate as residual predicates on the
//!   concatenated row; a join with no equi keys degenerates to nested
//!   loops.
//! - **Aggregate** keeps mergeable per-group partials (COUNT/SUM/AVG add
//!   and subtract exactly; the int-only restriction is enforced at plan
//!   time by [`eii_planner::maintain`]) and maintains MIN/MAX by
//!   compare-on-insert with **recompute-on-retract**: a retraction rescans
//!   only the affected group's retained rows. Each touched group emits a
//!   retraction of its old output row and an insertion of the new one.
//!
//! The maintained view is a canonical multiset (`BTreeMap<Row, i64>`)
//! materialized in sorted row order, so same-seed runs are bit-identical
//! and the IVM ≡ full-recompute property is checkable by sorting the
//! recomputed batch. Refresh cost is charged in simulated time as
//! [`IVM_PROBE_MS`] per base table plus [`IVM_ROW_MS`] per delta row — it
//! scales with the change, not the data (experiment E19 gates this).

use std::collections::BTreeMap;

use eii_data::{Batch, EiiError, Result, Row, Schema, SchemaRef, Value};
use eii_expr::{bind, AggFunc, BinaryOp, BoundExpr, Expr};
use eii_planner::LogicalPlan;
use eii_storage::{Change, ChangeOp};

/// Simulated cost of probing one base table's change log per refresh.
pub const IVM_PROBE_MS: f64 = 0.05;
/// Simulated cost of pushing one delta row through the operator tree.
pub const IVM_ROW_MS: f64 = 0.02;

/// A weighted delta: rows with signed multiplicities (+1 insert, -1
/// delete), keyed by the qualified `source.table` they originate from.
pub type TableDeltas = BTreeMap<String, Vec<(Row, i64)>>;

/// Convert one table's change-log suffix into a weighted delta batch.
pub fn changes_to_delta(changes: &[Change]) -> Vec<(Row, i64)> {
    let mut out = Vec::with_capacity(changes.len());
    for change in changes {
        match &change.op {
            ChangeOp::Insert { new } => out.push((new.clone(), 1)),
            ChangeOp::Delete { old } => out.push((old.clone(), -1)),
            ChangeOp::Update { old, new } => {
                out.push((old.clone(), -1));
                out.push((new.clone(), 1));
            }
        }
    }
    out
}

/// Merge `(row, weight)` into a multiset, dropping zero-weight entries.
fn merge_weight(map: &mut BTreeMap<Row, i64>, row: Row, w: i64) {
    use std::collections::btree_map::Entry;
    if w == 0 {
        return;
    }
    match map.entry(row) {
        Entry::Occupied(mut o) => {
            *o.get_mut() += w;
            if *o.get() == 0 {
                o.remove();
            }
        }
        Entry::Vacant(v) => {
            v.insert(w);
        }
    }
}

/// One aggregate's mergeable partial state within a group.
#[derive(Debug, Clone)]
enum Partial {
    CountStar,
    Count { non_null: i64 },
    Sum { total: i64, non_null: i64 },
    Avg { total: i64, non_null: i64 },
    Min { current: Option<Value> },
    Max { current: Option<Value> },
}

impl Partial {
    fn new(func: AggFunc, has_arg: bool) -> Partial {
        match func {
            AggFunc::CountStar => Partial::CountStar,
            AggFunc::Count if !has_arg => Partial::CountStar,
            AggFunc::Count => Partial::Count { non_null: 0 },
            AggFunc::Sum => Partial::Sum {
                total: 0,
                non_null: 0,
            },
            AggFunc::Avg => Partial::Avg {
                total: 0,
                non_null: 0,
            },
            AggFunc::Min => Partial::Min { current: None },
            AggFunc::Max => Partial::Max { current: None },
        }
    }
}

/// One aggregate's compiled spec: the function plus its bound argument.
#[derive(Debug)]
struct AggSpec {
    func: AggFunc,
    arg: Option<BoundExpr>,
}

/// Per-group maintenance state.
#[derive(Debug, Default)]
struct GroupState {
    /// Retained input rows with weights — the multiset MIN/MAX rescans on
    /// retraction.
    rows: BTreeMap<Row, i64>,
    /// Sum of weights: the group's row count (`COUNT(*)`).
    weight: i64,
    partials: Vec<Partial>,
}

impl GroupState {
    fn new(specs: &[AggSpec]) -> GroupState {
        GroupState {
            rows: BTreeMap::new(),
            weight: 0,
            partials: specs
                .iter()
                .map(|s| Partial::new(s.func, s.arg.is_some()))
                .collect(),
        }
    }

    /// The group's output values in agg-item order (mirrors
    /// `eii_exec::agg::Accumulator::finish`).
    fn finish(&self) -> Vec<Value> {
        self.partials
            .iter()
            .map(|p| match p {
                Partial::CountStar => Value::Int(self.weight),
                Partial::Count { non_null } => Value::Int(*non_null),
                Partial::Sum { total, non_null } => {
                    if *non_null == 0 {
                        Value::Null
                    } else {
                        Value::Int(*total)
                    }
                }
                Partial::Avg { total, non_null } => {
                    if *non_null == 0 {
                        Value::Null
                    } else {
                        Value::Float(*total as f64 / *non_null as f64)
                    }
                }
                Partial::Min { current } | Partial::Max { current } => {
                    current.clone().unwrap_or(Value::Null)
                }
            })
            .collect()
    }
}

/// The operator state tree.
#[derive(Debug)]
enum OpState {
    /// Leaf: deltas of one base table, filtered and projected like the
    /// scan.
    Scan {
        qualified: String,
        filters: Vec<BoundExpr>,
        projection: Option<Vec<usize>>,
    },
    Filter {
        input: Box<OpState>,
        predicate: BoundExpr,
    },
    Project {
        input: Box<OpState>,
        exprs: Vec<BoundExpr>,
    },
    /// Alias nodes requalify the schema but leave row values untouched.
    Pass { input: Box<OpState> },
    Union { inputs: Vec<OpState> },
    Join {
        left: Box<OpState>,
        right: Box<OpState>,
        left_keys: Vec<BoundExpr>,
        right_keys: Vec<BoundExpr>,
        residual: Vec<BoundExpr>,
        left_rows: BTreeMap<Vec<Value>, BTreeMap<Row, i64>>,
        right_rows: BTreeMap<Vec<Value>, BTreeMap<Row, i64>>,
    },
    Aggregate {
        input: Box<OpState>,
        group_exprs: Vec<BoundExpr>,
        specs: Vec<AggSpec>,
        groups: BTreeMap<Vec<Value>, GroupState>,
        /// Global (no GROUP BY) aggregates emit one default row over zero
        /// input rows; the group is seeded (and its default output
        /// emitted) on the first apply.
        global: bool,
        initialized: bool,
    },
}

fn split_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        left,
        op: BinaryOp::And,
        right,
    } = expr
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(expr.clone());
    }
}

fn build(plan: &LogicalPlan) -> Result<OpState> {
    match plan {
        LogicalPlan::SourceScan {
            source,
            table,
            base_schema,
            pushed_filters,
            projection,
            limit,
            ..
        } => {
            if limit.is_some() {
                return Err(EiiError::Plan(
                    "ivm: scan-level LIMIT is not incrementalizable".into(),
                ));
            }
            let filters = pushed_filters
                .iter()
                .map(|f| bind(f, base_schema))
                .collect::<Result<Vec<_>>>()?;
            let projection = projection
                .as_ref()
                .map(|cols| {
                    cols.iter()
                        .map(|c| base_schema.index_of(None, c))
                        .collect::<Result<Vec<_>>>()
                })
                .transpose()?;
            Ok(OpState::Scan {
                qualified: format!("{source}.{table}"),
                filters,
                projection,
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let schema = input.schema()?;
            Ok(OpState::Filter {
                predicate: bind(predicate, &schema)?,
                input: Box::new(build(input)?),
            })
        }
        LogicalPlan::Project { input, exprs } => {
            let schema = input.schema()?;
            let bound = exprs
                .iter()
                .map(|(e, _)| bind(e, &schema))
                .collect::<Result<Vec<_>>>()?;
            Ok(OpState::Project {
                input: Box::new(build(input)?),
                exprs: bound,
            })
        }
        LogicalPlan::Alias { input, .. } => Ok(OpState::Pass {
            input: Box::new(build(input)?),
        }),
        LogicalPlan::UnionAll { inputs } => Ok(OpState::Union {
            inputs: inputs.iter().map(build).collect::<Result<Vec<_>>>()?,
        }),
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => {
            if *kind != eii_sql::JoinKind::Inner {
                return Err(EiiError::Plan(format!(
                    "ivm: {kind} is not incrementalizable"
                )));
            }
            let lschema = left.schema()?;
            let rschema = right.schema()?;
            let joined = Schema::join(&lschema, &rschema);
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            let mut residual = Vec::new();
            let mut conjuncts = Vec::new();
            if let Some(on) = on {
                split_conjuncts(on, &mut conjuncts);
            }
            for c in conjuncts {
                // `a = b` becomes an equi key only when each operand binds
                // **exclusively** against one input. An operand that also
                // binds on the opposite schema (a literal, or an
                // unqualified name present in both inputs) is ambiguous
                // about which side it keys, so it stays a residual
                // predicate over the joined row — exactly how the executor
                // evaluates the ON clause.
                let mut keyed = false;
                if let Expr::Binary {
                    left: l,
                    op: BinaryOp::Eq,
                    right: r,
                } = &c
                {
                    let (l_on_l, l_on_r) = (bind(l, &lschema), bind(l, &rschema));
                    let (r_on_l, r_on_r) = (bind(r, &lschema), bind(r, &rschema));
                    match (l_on_l, l_on_r, r_on_l, r_on_r) {
                        (Ok(lk), Err(_), Err(_), Ok(rk)) => {
                            left_keys.push(lk);
                            right_keys.push(rk);
                            keyed = true;
                        }
                        (Err(_), Ok(rk), Ok(lk), Err(_)) => {
                            left_keys.push(lk);
                            right_keys.push(rk);
                            keyed = true;
                        }
                        _ => {}
                    }
                }
                if !keyed {
                    residual.push(bind(&c, &joined)?);
                }
            }
            Ok(OpState::Join {
                left: Box::new(build(left)?),
                right: Box::new(build(right)?),
                left_keys,
                right_keys,
                residual,
                left_rows: BTreeMap::new(),
                right_rows: BTreeMap::new(),
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let schema = input.schema()?;
            let group_exprs = group_by
                .iter()
                .map(|g| bind(g, &schema))
                .collect::<Result<Vec<_>>>()?;
            let specs = aggs
                .iter()
                .map(|a| {
                    if a.distinct {
                        return Err(EiiError::Plan(
                            "ivm: DISTINCT aggregates are not incrementalizable".into(),
                        ));
                    }
                    Ok(AggSpec {
                        func: a.func,
                        arg: a.arg.as_ref().map(|x| bind(x, &schema)).transpose()?,
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(OpState::Aggregate {
                input: Box::new(build(input)?),
                group_exprs,
                specs,
                groups: BTreeMap::new(),
                global: group_by.is_empty(),
                initialized: false,
            })
        }
        LogicalPlan::Values { .. }
        | LogicalPlan::MatViewScan { .. }
        | LogicalPlan::Distinct { .. }
        | LogicalPlan::Sort { .. }
        | LogicalPlan::Limit { .. } => Err(EiiError::Plan(format!(
            "ivm: operator is not incrementalizable:\n{}",
            plan.display()
        ))),
    }
}

fn eval_keys(keys: &[BoundExpr], row: &Row) -> Result<Vec<Value>> {
    keys.iter().map(|k| k.eval(row)).collect()
}

/// Evaluate a join-key vector; `None` when any component is NULL. NULL
/// keys never join (mirroring the executor's hash join), so NULL-keyed
/// rows are neither probed nor retained in the join state — a later
/// retraction of such a row evaluates to `None` again and is skipped
/// symmetrically.
fn eval_join_key(keys: &[BoundExpr], row: &Row) -> Result<Option<Vec<Value>>> {
    let mut out = Vec::with_capacity(keys.len());
    for k in keys {
        let v = k.eval(row)?;
        if v.is_null() {
            return Ok(None);
        }
        out.push(v);
    }
    Ok(Some(out))
}

impl OpState {
    fn apply(&mut self, deltas: &TableDeltas) -> Result<Vec<(Row, i64)>> {
        match self {
            OpState::Scan {
                qualified,
                filters,
                projection,
            } => {
                let mut out = Vec::new();
                if let Some(rows) = deltas.get(qualified) {
                    'row: for (row, w) in rows {
                        for f in filters.iter() {
                            if !f.eval_predicate(row)? {
                                continue 'row;
                            }
                        }
                        let shaped = match projection {
                            Some(idx) => row.project(idx),
                            None => row.clone(),
                        };
                        out.push((shaped, *w));
                    }
                }
                Ok(out)
            }
            OpState::Filter { input, predicate } => {
                let mut out = Vec::new();
                for (row, w) in input.apply(deltas)? {
                    if predicate.eval_predicate(&row)? {
                        out.push((row, w));
                    }
                }
                Ok(out)
            }
            OpState::Project { input, exprs } => {
                let mut out = Vec::new();
                for (row, w) in input.apply(deltas)? {
                    let values = exprs
                        .iter()
                        .map(|e| e.eval(&row))
                        .collect::<Result<Vec<_>>>()?;
                    out.push((Row::new(values), w));
                }
                Ok(out)
            }
            OpState::Pass { input } => input.apply(deltas),
            OpState::Union { inputs } => {
                let mut out = Vec::new();
                for input in inputs {
                    out.extend(input.apply(deltas)?);
                }
                Ok(out)
            }
            OpState::Join {
                left,
                right,
                left_keys,
                right_keys,
                residual,
                left_rows,
                right_rows,
            } => {
                let dl = left.apply(deltas)?;
                let dr = right.apply(deltas)?;
                let mut out = Vec::new();
                let emit = |lrow: &Row,
                            lw: i64,
                            rrow: &Row,
                            rw: i64,
                            out: &mut Vec<(Row, i64)>|
                 -> Result<()> {
                    let joined = lrow.concat(rrow);
                    for pred in residual.iter() {
                        if !pred.eval_predicate(&joined)? {
                            return Ok(());
                        }
                    }
                    out.push((joined, lw * rw));
                    Ok(())
                };
                // ΔL ⋈ R_old
                for (lrow, lw) in &dl {
                    let Some(key) = eval_join_key(left_keys, lrow)? else {
                        continue; // NULL keys never join.
                    };
                    if let Some(matches) = right_rows.get(&key) {
                        for (rrow, rw) in matches {
                            emit(lrow, *lw, rrow, *rw, &mut out)?;
                        }
                    }
                }
                // L becomes L_old ∪ ΔL before the right delta joins, so
                // ΔL ⋈ ΔR is counted exactly once (semi-naive). Buckets
                // whose multiset empties are removed on the spot — only
                // keys this delta touched, never a full state sweep.
                for (lrow, lw) in dl {
                    let Some(key) = eval_join_key(left_keys, &lrow)? else {
                        continue;
                    };
                    let bucket = left_rows.entry(key.clone()).or_default();
                    merge_weight(bucket, lrow, lw);
                    if bucket.is_empty() {
                        left_rows.remove(&key);
                    }
                }
                // L_new ⋈ ΔR
                for (rrow, rw) in &dr {
                    let Some(key) = eval_join_key(right_keys, rrow)? else {
                        continue;
                    };
                    if let Some(matches) = left_rows.get(&key) {
                        for (lrow, lw) in matches {
                            emit(lrow, *lw, rrow, *rw, &mut out)?;
                        }
                    }
                }
                for (rrow, rw) in dr {
                    let Some(key) = eval_join_key(right_keys, &rrow)? else {
                        continue;
                    };
                    let bucket = right_rows.entry(key.clone()).or_default();
                    merge_weight(bucket, rrow, rw);
                    if bucket.is_empty() {
                        right_rows.remove(&key);
                    }
                }
                Ok(out)
            }
            OpState::Aggregate {
                input,
                group_exprs,
                specs,
                groups,
                global,
                initialized,
            } => {
                let delta = input.apply(deltas)?;
                let mut out = Vec::new();
                if *global && !*initialized {
                    // Zero input rows still produce one output row
                    // (COUNT(*)=0, SUM/AVG/MIN/MAX=NULL), matching the
                    // executor's empty-input behavior.
                    let group = groups.entry(Vec::new()).or_insert_with(|| GroupState::new(specs));
                    out.push((Row::new(group.finish()), 1));
                }
                *initialized = true;
                // Bucket the delta per group key.
                let mut touched: BTreeMap<Vec<Value>, Vec<(Row, i64)>> = BTreeMap::new();
                for (row, w) in delta {
                    let key = eval_keys(group_exprs, &row)?;
                    touched.entry(key).or_default().push((row, w));
                }
                for (key, rows) in touched {
                    let existed = groups.contains_key(&key);
                    let group = groups.entry(key.clone()).or_insert_with(|| GroupState::new(specs));
                    let old = existed.then(|| {
                        let mut values = key.clone();
                        values.extend(group.finish());
                        Row::new(values)
                    });
                    let mut rescan: Vec<usize> = Vec::new();
                    for (row, w) in &rows {
                        group.weight += w;
                        for (i, spec) in specs.iter().enumerate() {
                            let value = match &spec.arg {
                                Some(arg) => Some(arg.eval(row)?),
                                None => None,
                            };
                            apply_partial(&mut group.partials[i], value, *w, i, &mut rescan)?;
                        }
                        merge_weight(&mut group.rows, row.clone(), *w);
                    }
                    // Recompute-on-retract: a retraction may have removed
                    // the extremum; rescan this group's retained rows only.
                    rescan.sort_unstable();
                    rescan.dedup();
                    for i in rescan {
                        let arg = specs[i].arg.as_ref().expect("min/max carries an arg");
                        let mut current: Option<Value> = None;
                        let is_min = matches!(group.partials[i], Partial::Min { .. });
                        for row in group.rows.keys() {
                            let v = arg.eval(row)?;
                            if v == Value::Null {
                                continue;
                            }
                            let better = match &current {
                                None => true,
                                Some(c) => {
                                    if is_min {
                                        v < *c
                                    } else {
                                        v > *c
                                    }
                                }
                            };
                            if better {
                                current = Some(v);
                            }
                        }
                        match &mut group.partials[i] {
                            Partial::Min { current: c } | Partial::Max { current: c } => {
                                *c = current;
                            }
                            _ => unreachable!("rescan targets only MIN/MAX"),
                        }
                    }
                    let alive = group.weight != 0 || (*global && key.is_empty());
                    let new = alive.then(|| {
                        let mut values = key.clone();
                        values.extend(group.finish());
                        Row::new(values)
                    });
                    if old != new {
                        if let Some(old) = old {
                            out.push((old, -1));
                        }
                        if let Some(new) = new {
                            out.push((new, 1));
                        }
                    }
                    if !alive {
                        groups.remove(&key);
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Fold one weighted value into a partial; MIN/MAX retractions of non-null
/// values enqueue the spec index for a group rescan.
fn apply_partial(
    partial: &mut Partial,
    value: Option<Value>,
    w: i64,
    spec_index: usize,
    rescan: &mut Vec<usize>,
) -> Result<()> {
    match partial {
        Partial::CountStar => {}
        Partial::Count { non_null } => {
            if !matches!(value, Some(Value::Null) | None) {
                *non_null += w;
            }
        }
        Partial::Sum { total, non_null } | Partial::Avg { total, non_null } => match value {
            Some(Value::Null) | None => {}
            Some(Value::Int(i)) => {
                *total = total.wrapping_add(i.wrapping_mul(w));
                *non_null += w;
            }
            Some(other) => {
                return Err(EiiError::Execution(format!(
                    "ivm: SUM/AVG partial over non-integer value {other} \
                     (plan-time validation should have fallen back)"
                )))
            }
        },
        Partial::Min { current } => match value {
            Some(Value::Null) | None => {}
            Some(v) if w > 0 => {
                if current.as_ref().is_none_or(|c| v < *c) {
                    *current = Some(v);
                }
            }
            Some(_) => rescan.push(spec_index),
        },
        Partial::Max { current } => match value {
            Some(Value::Null) | None => {}
            Some(v) if w > 0 => {
                if current.as_ref().is_none_or(|c| v > *c) {
                    *current = Some(v);
                }
            }
            Some(_) => rescan.push(spec_index),
        },
    }
    Ok(())
}

/// Cumulative maintenance statistics for one view.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IvmStats {
    /// Incremental refreshes applied.
    pub refreshes: u64,
    /// Base-table delta rows consumed across all refreshes.
    pub input_rows: u64,
    /// Output delta rows the root operator emitted.
    pub output_rows: u64,
    /// Total simulated maintenance cost.
    pub sim_ms: f64,
}

/// Per-view incremental maintenance state: the operator tree, the
/// maintained result multiset, and one change-log watermark per base
/// table.
#[derive(Debug)]
pub struct IvmState {
    root: OpState,
    result: BTreeMap<Row, i64>,
    schema: SchemaRef,
    watermarks: BTreeMap<String, u64>,
    stats: IvmStats,
}

impl IvmState {
    /// Compile a maintenance state tree from a view's optimized logical
    /// plan (already validated by
    /// [`eii_planner::derive_maintenance_plan`]) and the base tables it
    /// reads. Watermarks start at 0, so the first delta application
    /// replays the whole change log — bootstrap and steady-state refresh
    /// share one code path.
    pub fn build(plan: &LogicalPlan, base_tables: &[String]) -> Result<IvmState> {
        Ok(IvmState {
            root: build(plan)?,
            result: BTreeMap::new(),
            schema: plan.schema()?,
            watermarks: base_tables.iter().map(|t| (t.clone(), 0)).collect(),
            stats: IvmStats::default(),
        })
    }

    /// The base tables this view maintains watermarks for.
    pub fn base_tables(&self) -> Vec<String> {
        self.watermarks.keys().cloned().collect()
    }

    /// The change-log watermark up to which `qualified` has been applied.
    pub fn watermark(&self, qualified: &str) -> u64 {
        self.watermarks.get(qualified).copied().unwrap_or(0)
    }

    /// Cumulative maintenance statistics.
    pub fn stats(&self) -> IvmStats {
        self.stats
    }

    /// Apply one round of per-table deltas, advancing each table's
    /// watermark to the paired sequence number. Returns the simulated cost
    /// of this application.
    pub fn apply(&mut self, deltas: &TableDeltas, new_watermarks: &[(String, u64)]) -> Result<f64> {
        let input_rows: usize = deltas.values().map(Vec::len).sum();
        let out = self.root.apply(deltas)?;
        let output_rows = out.len();
        for (row, w) in out {
            merge_weight(&mut self.result, row, w);
        }
        for (table, wm) in new_watermarks {
            self.watermarks.insert(table.clone(), *wm);
        }
        let sim_ms = self.watermarks.len() as f64 * IVM_PROBE_MS
            + (input_rows + output_rows) as f64 * IVM_ROW_MS;
        self.stats.refreshes += 1;
        self.stats.input_rows += input_rows as u64;
        self.stats.output_rows += output_rows as u64;
        self.stats.sim_ms += sim_ms;
        Ok(sim_ms)
    }

    /// Materialize the maintained multiset as a batch in canonical
    /// (sorted-row) order.
    pub fn materialize(&self) -> Result<Batch> {
        let mut rows = Vec::new();
        for (row, w) in &self.result {
            if *w < 0 {
                return Err(EiiError::Execution(format!(
                    "ivm: negative multiplicity {w} for row {row:?} — \
                     base change log retracted a row it never inserted"
                )));
            }
            for _ in 0..*w {
                rows.push(row.clone());
            }
        }
        Ok(Batch::new(self.schema.clone(), rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field};
    use eii_planner::AggItem;
    use std::sync::Arc;

    fn orders_scan() -> LogicalPlan {
        LogicalPlan::SourceScan {
            source: "sales".into(),
            table: "orders".into(),
            alias: "o".into(),
            base_schema: Arc::new(Schema::new(vec![
                Field::new("id", DataType::Int).not_null(),
                Field::new("customer_id", DataType::Int),
                Field::new("qty", DataType::Int),
            ])),
            pushed_filters: vec![],
            projection: None,
            limit: None,
        }
    }

    fn customers_scan() -> LogicalPlan {
        LogicalPlan::SourceScan {
            source: "crm".into(),
            table: "customers".into(),
            alias: "c".into(),
            base_schema: Arc::new(Schema::new(vec![
                Field::new("id", DataType::Int).not_null(),
                Field::new("region", DataType::Str),
            ])),
            pushed_filters: vec![],
            projection: None,
            limit: None,
        }
    }

    fn deltas(table: &str, rows: Vec<(Row, i64)>) -> TableDeltas {
        let mut m = TableDeltas::new();
        m.insert(table.into(), rows);
        m
    }

    #[test]
    fn scan_filter_applies_pushed_predicates_per_delta() {
        let mut plan = orders_scan();
        if let LogicalPlan::SourceScan {
            pushed_filters,
            projection,
            ..
        } = &mut plan
        {
            *pushed_filters = vec![Expr::col("qty").gt(Expr::lit(5i64))];
            *projection = Some(vec!["id".into(), "qty".into()]);
        }
        let mut state = IvmState::build(&plan, &["sales.orders".into()]).unwrap();
        state
            .apply(
                &deltas(
                    "sales.orders",
                    vec![(row![1i64, 10i64, 3i64], 1), (row![2i64, 11i64, 9i64], 1)],
                ),
                &[("sales.orders".into(), 2)],
            )
            .unwrap();
        let batch = state.materialize().unwrap();
        assert_eq!(batch.rows(), &[row![2i64, 9i64]]);
        assert_eq!(state.watermark("sales.orders"), 2);
        // Retraction removes it again.
        state
            .apply(
                &deltas("sales.orders", vec![(row![2i64, 11i64, 9i64], -1)]),
                &[("sales.orders".into(), 3)],
            )
            .unwrap();
        assert!(state.materialize().unwrap().is_empty());
    }

    #[test]
    fn join_is_semi_naive_and_counts_each_pair_once() {
        let plan = LogicalPlan::Join {
            left: Box::new(customers_scan()),
            right: Box::new(orders_scan()),
            kind: eii_sql::JoinKind::Inner,
            on: Some(Expr::qcol("c", "id").eq(Expr::qcol("o", "customer_id"))),
        };
        let mut state =
            IvmState::build(&plan, &["crm.customers".into(), "sales.orders".into()]).unwrap();
        // Both sides change in the same round: the pair must appear once.
        let mut d = TableDeltas::new();
        d.insert("crm.customers".into(), vec![(row![7i64, "r1"], 1)]);
        d.insert("sales.orders".into(), vec![(row![1i64, 7i64, 5i64], 1)]);
        state.apply(&d, &[]).unwrap();
        let batch = state.materialize().unwrap();
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.rows()[0], row![7i64, "r1", 1i64, 7i64, 5i64]);
        // Deleting the left row retracts the joined row.
        state
            .apply(
                &deltas("crm.customers", vec![(row![7i64, "r1"], -1)]),
                &[],
            )
            .unwrap();
        assert!(state.materialize().unwrap().is_empty());
    }

    #[test]
    fn null_join_keys_never_match() {
        let plan = LogicalPlan::Join {
            left: Box::new(customers_scan()),
            right: Box::new(orders_scan()),
            kind: eii_sql::JoinKind::Inner,
            on: Some(Expr::qcol("c", "id").eq(Expr::qcol("o", "customer_id"))),
        };
        let mut state =
            IvmState::build(&plan, &["crm.customers".into(), "sales.orders".into()]).unwrap();
        let mut d = TableDeltas::new();
        d.insert("crm.customers".into(), vec![(row![7i64, "r1"], 1)]);
        d.insert(
            "sales.orders".into(),
            vec![
                (row![1i64, Value::Null, 5i64], 1),
                (row![2i64, 7i64, 3i64], 1),
            ],
        );
        state.apply(&d, &[]).unwrap();
        let batch = state.materialize().unwrap();
        assert_eq!(batch.rows(), &[row![7i64, "r1", 2i64, 7i64, 3i64]]);
        // A NULL-keyed left row arrives while the NULL-keyed order would
        // still be in a naive join state: NULL must not join NULL (the
        // executor's hash join drops both).
        state
            .apply(
                &deltas("crm.customers", vec![(row![Value::Null, "rX"], 1)]),
                &[],
            )
            .unwrap();
        assert_eq!(state.materialize().unwrap().num_rows(), 1);
        // Retracting the NULL-keyed rows is symmetric: no output change,
        // no negative multiplicities.
        let mut d = TableDeltas::new();
        d.insert("crm.customers".into(), vec![(row![Value::Null, "rX"], -1)]);
        d.insert(
            "sales.orders".into(),
            vec![(row![1i64, Value::Null, 5i64], -1)],
        );
        state.apply(&d, &[]).unwrap();
        assert_eq!(state.materialize().unwrap().num_rows(), 1);
    }

    #[test]
    fn ambiguous_and_literal_conjuncts_stay_residual() {
        // `o.qty = 5`: the literal binds on both schemas, so the conjunct
        // must not be promoted to an equi key — it evaluates as a residual
        // predicate and still filters pairs correctly.
        let on = Expr::qcol("c", "id")
            .eq(Expr::qcol("o", "customer_id"))
            .and(Expr::qcol("o", "qty").eq(Expr::lit(5i64)));
        let plan = LogicalPlan::Join {
            left: Box::new(customers_scan()),
            right: Box::new(orders_scan()),
            kind: eii_sql::JoinKind::Inner,
            on: Some(on),
        };
        let mut state =
            IvmState::build(&plan, &["crm.customers".into(), "sales.orders".into()]).unwrap();
        let mut d = TableDeltas::new();
        d.insert("crm.customers".into(), vec![(row![7i64, "r1"], 1)]);
        d.insert(
            "sales.orders".into(),
            vec![(row![1i64, 7i64, 5i64], 1), (row![2i64, 7i64, 9i64], 1)],
        );
        state.apply(&d, &[]).unwrap();
        let batch = state.materialize().unwrap();
        assert_eq!(batch.rows(), &[row![7i64, "r1", 1i64, 7i64, 5i64]]);
    }

    #[test]
    fn join_residual_predicates_filter_pairs() {
        let on = Expr::qcol("c", "id")
            .eq(Expr::qcol("o", "customer_id"))
            .and(Expr::qcol("o", "qty").gt(Expr::lit(10i64)));
        let plan = LogicalPlan::Join {
            left: Box::new(customers_scan()),
            right: Box::new(orders_scan()),
            kind: eii_sql::JoinKind::Inner,
            on: Some(on),
        };
        let mut state =
            IvmState::build(&plan, &["crm.customers".into(), "sales.orders".into()]).unwrap();
        let mut d = TableDeltas::new();
        d.insert("crm.customers".into(), vec![(row![7i64, "r1"], 1)]);
        d.insert(
            "sales.orders".into(),
            vec![(row![1i64, 7i64, 5i64], 1), (row![2i64, 7i64, 50i64], 1)],
        );
        state.apply(&d, &[]).unwrap();
        assert_eq!(state.materialize().unwrap().num_rows(), 1);
    }

    fn agg_plan(func: AggFunc, arg: Option<Expr>, grouped: bool) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(orders_scan()),
            group_by: if grouped {
                vec![Expr::qcol("o", "customer_id")]
            } else {
                vec![]
            },
            aggs: vec![AggItem {
                func,
                arg,
                distinct: false,
                name: "agg".into(),
            }],
        }
    }

    #[test]
    fn global_aggregate_over_zero_rows_emits_default_row() {
        let mut state = IvmState::build(
            &agg_plan(AggFunc::CountStar, None, false),
            &["sales.orders".into()],
        )
        .unwrap();
        state.apply(&TableDeltas::new(), &[]).unwrap();
        let batch = state.materialize().unwrap();
        assert_eq!(batch.rows(), &[row![0i64]]);
        // Sum over zero rows would be NULL.
        let mut sum = IvmState::build(
            &agg_plan(AggFunc::Sum, Some(Expr::qcol("o", "qty")), false),
            &["sales.orders".into()],
        )
        .unwrap();
        sum.apply(&TableDeltas::new(), &[]).unwrap();
        assert_eq!(sum.materialize().unwrap().rows(), &[row![Value::Null]]);
    }

    #[test]
    fn grouped_count_and_sum_track_inserts_updates_deletes() {
        let mut state = IvmState::build(
            &agg_plan(AggFunc::Sum, Some(Expr::qcol("o", "qty")), true),
            &["sales.orders".into()],
        )
        .unwrap();
        state
            .apply(
                &deltas(
                    "sales.orders",
                    vec![
                        (row![1i64, 7i64, 5i64], 1),
                        (row![2i64, 7i64, 3i64], 1),
                        (row![3i64, 8i64, 10i64], 1),
                    ],
                ),
                &[],
            )
            .unwrap();
        assert_eq!(
            state.materialize().unwrap().rows(),
            &[row![7i64, 8i64], row![8i64, 10i64]]
        );
        // Update order 2's qty 3 -> 30 (retract + insert).
        state
            .apply(
                &deltas(
                    "sales.orders",
                    vec![(row![2i64, 7i64, 3i64], -1), (row![2i64, 7i64, 30i64], 1)],
                ),
                &[],
            )
            .unwrap();
        assert_eq!(
            state.materialize().unwrap().rows(),
            &[row![7i64, 35i64], row![8i64, 10i64]]
        );
        // Delete the whole group 8.
        state
            .apply(
                &deltas("sales.orders", vec![(row![3i64, 8i64, 10i64], -1)]),
                &[],
            )
            .unwrap();
        assert_eq!(state.materialize().unwrap().rows(), &[row![7i64, 35i64]]);
    }

    #[test]
    fn min_max_recompute_on_retract() {
        let mut state = IvmState::build(
            &agg_plan(AggFunc::Max, Some(Expr::qcol("o", "qty")), true),
            &["sales.orders".into()],
        )
        .unwrap();
        state
            .apply(
                &deltas(
                    "sales.orders",
                    vec![
                        (row![1i64, 7i64, 5i64], 1),
                        (row![2i64, 7i64, 9i64], 1),
                        (row![3i64, 7i64, 2i64], 1),
                    ],
                ),
                &[],
            )
            .unwrap();
        assert_eq!(state.materialize().unwrap().rows(), &[row![7i64, 9i64]]);
        // Retract the maximum: the group rescans and finds 5.
        state
            .apply(
                &deltas("sales.orders", vec![(row![2i64, 7i64, 9i64], -1)]),
                &[],
            )
            .unwrap();
        assert_eq!(state.materialize().unwrap().rows(), &[row![7i64, 5i64]]);
    }

    #[test]
    fn avg_matches_executor_null_semantics() {
        let mut state = IvmState::build(
            &agg_plan(AggFunc::Avg, Some(Expr::qcol("o", "qty")), true),
            &["sales.orders".into()],
        )
        .unwrap();
        state
            .apply(
                &deltas(
                    "sales.orders",
                    vec![
                        (row![1i64, 7i64, 4i64], 1),
                        (row![2i64, 7i64, Value::Null], 1),
                        (row![3i64, 7i64, 8i64], 1),
                    ],
                ),
                &[],
            )
            .unwrap();
        // NULL qty is skipped: AVG = (4+8)/2.
        assert_eq!(state.materialize().unwrap().rows(), &[row![7i64, 6.0f64]]);
    }

    #[test]
    fn stats_scale_with_delta_not_result() {
        let plan = orders_scan();
        let mut state = IvmState::build(&plan, &["sales.orders".into()]).unwrap();
        let big: Vec<(Row, i64)> = (0..100i64).map(|i| (row![i, i, i], 1)).collect();
        state.apply(&deltas("sales.orders", big), &[]).unwrap();
        let bootstrap = state.stats();
        assert_eq!(bootstrap.input_rows, 100);
        let one = state
            .apply(
                &deltas("sales.orders", vec![(row![200i64, 0i64, 0i64], 1)]),
                &[],
            )
            .unwrap();
        assert!(one < 1.0, "single-row delta must be cheap, got {one}");
        assert_eq!(state.stats().input_rows, 101);
        assert_eq!(state.materialize().unwrap().num_rows(), 101);
    }
}
