//! # eii-matview
//!
//! Two Nimble-lineage features Draper (§5) calls "essential", "not part of
//! the 'pure' definition of EII":
//!
//! - **Materialized views** ([`MatViewManager`]): "a materialized view
//!   capability that allowed administrators to pre-compute views. In
//!   essence, the administrator was able to choose whether she wanted live
//!   data for a particular view or not. Another way to look at this was as a
//!   light-weight ETL system." Policies: live, periodic(τ), manual.
//!
//! - **Record correlation** ([`correlation`]): "a record-correlation
//!   capability that enabled customers to create joins over sources that had
//!   no simply-computable join key ... creating and storing what was
//!   essentially a join index between the sources."

#![deny(missing_docs)]

pub mod correlation;
pub mod ivm;
pub mod matview;

pub use correlation::{similarity, CorrelationIndex};
pub use ivm::{changes_to_delta, IvmState, IvmStats, TableDeltas, IVM_PROBE_MS, IVM_ROW_MS};
pub use matview::{FetchOutcome, IvmStatus, MatViewManager, RefreshPolicy};
