//! Materialized views over the federation.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use eii_catalog::Catalog;
use eii_data::{Batch, EiiError, Result, SchemaRef, SimClock};
use eii_exec::{Executor, MatViewStore};
use eii_federation::Federation;
use eii_planner::{
    optimize, LogicalPlan, MatViewDef, PhysicalPlan, PhysicalPlanner, PlanBuilder, PlannerConfig,
};
use eii_sql::parse_query;

/// When a view's cached result is recomputed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshPolicy {
    /// Never cache: every fetch runs the federated query (fresh, slow).
    Live,
    /// Recompute when the cache is older than the interval.
    Periodic {
        /// Maximum cache age before a fetch recomputes, simulated ms.
        interval_ms: i64,
    },
    /// Recompute only on explicit [`MatViewManager::refresh`].
    Manual,
}

/// How a fetch was served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchOutcome {
    /// Simulated cost paid by this fetch (0-ish for cache hits).
    pub sim_ms: f64,
    /// Age of the served data, ms (0 when computed live).
    pub staleness_ms: i64,
    /// Whether the fetch ran the federated query.
    pub recomputed: bool,
}

struct ViewState {
    plan: PhysicalPlan,
    /// The optimized logical definition, exported to the planner's
    /// answering-queries-using-views rewrite pass.
    logical: LogicalPlan,
    schema: SchemaRef,
    policy: RefreshPolicy,
    cache: Option<Batch>,
    cached_at_ms: i64,
    refresh_count: usize,
    total_refresh_ms: f64,
}

impl ViewState {
    /// Is the cached materialization servable at `now_ms` without a
    /// recompute? Live views never are (every fetch recomputes); periodic
    /// views are within their interval; manual views whenever materialized.
    fn servable(&self, now_ms: i64) -> bool {
        self.cache.is_some()
            && match self.policy {
                RefreshPolicy::Live => false,
                RefreshPolicy::Periodic { interval_ms } => {
                    now_ms - self.cached_at_ms < interval_ms
                }
                RefreshPolicy::Manual => true,
            }
    }
}

/// Manages a set of materialized views.
pub struct MatViewManager {
    federation: Federation,
    clock: SimClock,
    views: Mutex<BTreeMap<String, ViewState>>,
    store: MatViewStore,
}

impl MatViewManager {
    /// New manager over a federation.
    pub fn new(federation: Federation, clock: SimClock) -> Self {
        MatViewManager {
            federation,
            clock,
            views: Mutex::new(BTreeMap::new()),
            store: MatViewStore::new(),
        }
    }

    /// The shared row store every materialization is synced into. Hand a
    /// clone to [`Executor::with_matviews`] so rewritten plans can scan
    /// the views locally.
    pub fn store(&self) -> MatViewStore {
        self.store.clone()
    }

    /// Definitions of every view whose materialization is servable at
    /// `now_ms` under its refresh policy, as plain data for
    /// [`eii_planner::rewrite_matviews`]. Live views (which must always
    /// recompute) and expired or never-materialized caches are excluded.
    pub fn defs(&self, now_ms: i64) -> Vec<MatViewDef> {
        self.views
            .lock()
            .iter()
            .filter(|(_, s)| s.servable(now_ms))
            .map(|(name, s)| MatViewDef {
                name: name.clone(),
                plan: s.logical.clone(),
                schema: s.schema.clone(),
                rows: s.cache.as_ref().map_or(0, Batch::num_rows),
            })
            .collect()
    }

    /// Define a materialized view from SQL (planned once against the
    /// catalog and federation, with full optimization).
    pub fn define(
        &self,
        name: &str,
        sql: &str,
        catalog: &Catalog,
        policy: RefreshPolicy,
    ) -> Result<()> {
        let mut views = self.views.lock();
        if views.contains_key(name) {
            return Err(EiiError::AlreadyExists(format!("materialized view {name}")));
        }
        let query = parse_query(sql)?;
        let config = PlannerConfig::optimized();
        let logical = PlanBuilder::new(catalog, &self.federation).build(&query)?;
        let logical = optimize(logical, &self.federation, &config)?;
        let schema = logical.schema()?;
        let plan = PhysicalPlanner::new(&self.federation, &config).create(logical.clone())?;
        views.insert(
            name.to_string(),
            ViewState {
                plan,
                logical,
                schema,
                policy,
                cache: None,
                cached_at_ms: 0,
                refresh_count: 0,
                total_refresh_ms: 0.0,
            },
        );
        Ok(())
    }

    fn compute(&self, name: &str, state: &mut ViewState) -> Result<(Batch, f64)> {
        let exec = Executor::new(&self.federation);
        let res = exec.execute(&state.plan)?;
        state.refresh_count += 1;
        state.total_refresh_ms += res.cost.sim_ms;
        self.store
            .put(name, res.batch.clone(), self.clock.now_ms());
        Ok((res.batch, res.cost.sim_ms))
    }

    /// Fetch the view's rows under its policy.
    pub fn fetch(&self, name: &str) -> Result<(Batch, FetchOutcome)> {
        let mut views = self.views.lock();
        let state = views
            .get_mut(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        let now = self.clock.now_ms();
        let recompute = !state.servable(now);
        if recompute {
            let (batch, sim_ms) = self.compute(name, state)?;
            state.cache = Some(batch.clone());
            state.cached_at_ms = now;
            return Ok((
                batch,
                FetchOutcome {
                    sim_ms,
                    staleness_ms: 0,
                    recomputed: true,
                },
            ));
        }
        let batch = state.cache.clone().expect("cache present");
        Ok((
            batch,
            FetchOutcome {
                sim_ms: 0.05, // local cache read
                staleness_ms: now - state.cached_at_ms,
                recomputed: false,
            },
        ))
    }

    /// Explicitly recompute the view now.
    pub fn refresh(&self, name: &str) -> Result<f64> {
        let mut views = self.views.lock();
        let state = views
            .get_mut(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        let (batch, sim_ms) = self.compute(name, state)?;
        state.cache = Some(batch);
        state.cached_at_ms = self.clock.now_ms();
        Ok(sim_ms)
    }

    /// Change a view's policy ("the administrator was able to choose").
    pub fn set_policy(&self, name: &str, policy: RefreshPolicy) -> Result<()> {
        let mut views = self.views.lock();
        let state = views
            .get_mut(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        state.policy = policy;
        Ok(())
    }

    /// How many times the view was recomputed.
    pub fn refresh_count(&self, name: &str) -> usize {
        self.views
            .lock()
            .get(name)
            .map_or(0, |s| s.refresh_count)
    }

    /// Total simulated recomputation cost.
    pub fn total_refresh_ms(&self, name: &str) -> f64 {
        self.views
            .lock()
            .get(name)
            .map_or(0.0, |s| s.total_refresh_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema, Value};
    use eii_federation::{LinkProfile, RelationalConnector, WireFormat};
    use eii_storage::{Database, TableDef};
    use std::sync::Arc;

    fn setup() -> (Catalog, Federation, SimClock, eii_storage::database::TableHandle) {
        let clock = SimClock::new();
        let db = Database::new("crm", clock.clone());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("region", DataType::Str),
        ]));
        let t = db
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        for i in 0..10i64 {
            t.write().insert(row![i, format!("r{}", i % 2)]).unwrap();
        }
        let fed = Federation::new();
        fed.register(
            Arc::new(RelationalConnector::new(db)),
            LinkProfile::wan(),
            WireFormat::Native,
        )
        .unwrap();
        (Catalog::new(), fed, clock, t)
    }

    #[test]
    fn live_policy_always_recomputes() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Live)
            .unwrap();
        let (_, o1) = mgr.fetch("v").unwrap();
        let (_, o2) = mgr.fetch("v").unwrap();
        assert!(o1.recomputed && o2.recomputed);
        assert_eq!(mgr.refresh_count("v"), 2);
        assert_eq!(o2.staleness_ms, 0);
    }

    #[test]
    fn periodic_policy_serves_cache_within_interval() {
        let (cat, fed, clock, src) = setup();
        let mgr = MatViewManager::new(fed, clock.clone());
        mgr.define(
            "v",
            "SELECT id FROM crm.customers",
            &cat,
            RefreshPolicy::Periodic { interval_ms: 1000 },
        )
        .unwrap();
        let (b1, o1) = mgr.fetch("v").unwrap();
        assert!(o1.recomputed);
        // Source changes; cache does not see it yet.
        src.write().insert(row![100i64, "r9"]).unwrap();
        clock.advance_ms(500);
        let (b2, o2) = mgr.fetch("v").unwrap();
        assert!(!o2.recomputed);
        assert_eq!(o2.staleness_ms, 500);
        assert_eq!(b1.num_rows(), b2.num_rows(), "stale data served");
        assert!(o2.sim_ms < o1.sim_ms, "cache hits are cheap");
        // Past the interval the view recomputes and sees the change.
        clock.advance_ms(600);
        let (b3, o3) = mgr.fetch("v").unwrap();
        assert!(o3.recomputed);
        assert_eq!(b3.num_rows(), 11);
    }

    #[test]
    fn manual_policy_until_refresh() {
        let (cat, fed, clock, src) = setup();
        let mgr = MatViewManager::new(fed, clock.clone());
        mgr.define("v", "SELECT COUNT(*) AS n FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
        let (b1, _) = mgr.fetch("v").unwrap();
        assert_eq!(b1.rows()[0].get(0), &Value::Int(10));
        src.write().insert(row![100i64, "r9"]).unwrap();
        clock.advance_ms(10_000);
        let (b2, o2) = mgr.fetch("v").unwrap();
        assert!(!o2.recomputed);
        assert_eq!(b2.rows()[0].get(0), &Value::Int(10), "stale until refreshed");
        mgr.refresh("v").unwrap();
        let (b3, _) = mgr.fetch("v").unwrap();
        assert_eq!(b3.rows()[0].get(0), &Value::Int(11));
    }

    #[test]
    fn policy_can_change_at_runtime() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
        mgr.fetch("v").unwrap();
        mgr.set_policy("v", RefreshPolicy::Live).unwrap();
        let (_, o) = mgr.fetch("v").unwrap();
        assert!(o.recomputed);
    }

    #[test]
    fn defs_export_only_servable_views() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock.clone());
        mgr.define("live", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Live)
            .unwrap();
        mgr.define(
            "periodic",
            "SELECT id FROM crm.customers",
            &cat,
            RefreshPolicy::Periodic { interval_ms: 1000 },
        )
        .unwrap();
        mgr.define("manual", "SELECT region FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
        // Nothing materialized yet: nothing servable.
        assert!(mgr.defs(clock.now_ms()).is_empty());
        mgr.fetch("live").unwrap();
        mgr.fetch("periodic").unwrap();
        mgr.refresh("manual").unwrap();
        let defs = mgr.defs(clock.now_ms());
        let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        // Live views must always recompute, so they never export.
        assert_eq!(names, vec!["manual", "periodic"]);
        assert!(defs.iter().all(|d| d.rows == 10));
        // Past its interval the periodic view's cache expires out.
        clock.advance_ms(5000);
        let names: Vec<String> = mgr
            .defs(clock.now_ms())
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(names, vec!["manual".to_string()]);
    }

    #[test]
    fn materializations_sync_into_the_shared_store() {
        let (cat, fed, clock, src) = setup();
        let mgr = MatViewManager::new(fed, clock);
        let store = mgr.store();
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
        assert!(store.get("v").is_none());
        mgr.fetch("v").unwrap();
        assert_eq!(store.get("v").unwrap().0.num_rows(), 10);
        src.write().insert(row![100i64, "r9"]).unwrap();
        mgr.refresh("v").unwrap();
        assert_eq!(store.get("v").unwrap().0.num_rows(), 11);
    }

    #[test]
    fn unknown_view_not_found() {
        let (_, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        assert_eq!(mgr.fetch("ghost").unwrap_err().kind(), "not_found");
        assert_eq!(mgr.refresh("ghost").unwrap_err().kind(), "not_found");
    }

    #[test]
    fn duplicate_definition_rejected() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Live)
            .unwrap();
        assert_eq!(
            mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Live)
                .unwrap_err()
                .kind(),
            "already_exists"
        );
    }
}
