//! Materialized views over the federation.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use eii_catalog::Catalog;
use eii_data::{Batch, EiiError, Result, SimClock};
use eii_exec::Executor;
use eii_federation::Federation;
use eii_planner::{plan_query, PhysicalPlan, PlannerConfig};
use eii_sql::parse_query;

/// When a view's cached result is recomputed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshPolicy {
    /// Never cache: every fetch runs the federated query (fresh, slow).
    Live,
    /// Recompute when the cache is older than the interval.
    Periodic { interval_ms: i64 },
    /// Recompute only on explicit [`MatViewManager::refresh`].
    Manual,
}

/// How a fetch was served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchOutcome {
    /// Simulated cost paid by this fetch (0-ish for cache hits).
    pub sim_ms: f64,
    /// Age of the served data, ms (0 when computed live).
    pub staleness_ms: i64,
    /// Whether the fetch ran the federated query.
    pub recomputed: bool,
}

struct ViewState {
    plan: PhysicalPlan,
    policy: RefreshPolicy,
    cache: Option<Batch>,
    cached_at_ms: i64,
    refresh_count: usize,
    total_refresh_ms: f64,
}

/// Manages a set of materialized views.
pub struct MatViewManager {
    federation: Federation,
    clock: SimClock,
    views: Mutex<BTreeMap<String, ViewState>>,
}

impl MatViewManager {
    /// New manager over a federation.
    pub fn new(federation: Federation, clock: SimClock) -> Self {
        MatViewManager {
            federation,
            clock,
            views: Mutex::new(BTreeMap::new()),
        }
    }

    /// Define a materialized view from SQL (planned once against the
    /// catalog and federation, with full optimization).
    pub fn define(
        &self,
        name: &str,
        sql: &str,
        catalog: &Catalog,
        policy: RefreshPolicy,
    ) -> Result<()> {
        let mut views = self.views.lock();
        if views.contains_key(name) {
            return Err(EiiError::AlreadyExists(format!("materialized view {name}")));
        }
        let query = parse_query(sql)?;
        let plan = plan_query(&query, catalog, &self.federation, &PlannerConfig::optimized())?;
        views.insert(
            name.to_string(),
            ViewState {
                plan,
                policy,
                cache: None,
                cached_at_ms: 0,
                refresh_count: 0,
                total_refresh_ms: 0.0,
            },
        );
        Ok(())
    }

    fn compute(&self, state: &mut ViewState) -> Result<(Batch, f64)> {
        let exec = Executor::new(&self.federation);
        let res = exec.execute(&state.plan)?;
        state.refresh_count += 1;
        state.total_refresh_ms += res.cost.sim_ms;
        Ok((res.batch, res.cost.sim_ms))
    }

    /// Fetch the view's rows under its policy.
    pub fn fetch(&self, name: &str) -> Result<(Batch, FetchOutcome)> {
        let mut views = self.views.lock();
        let state = views
            .get_mut(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        let now = self.clock.now_ms();
        let recompute = match state.policy {
            RefreshPolicy::Live => true,
            RefreshPolicy::Periodic { interval_ms } => {
                state.cache.is_none() || now - state.cached_at_ms >= interval_ms
            }
            RefreshPolicy::Manual => state.cache.is_none(),
        };
        if recompute {
            let (batch, sim_ms) = self.compute(state)?;
            state.cache = Some(batch.clone());
            state.cached_at_ms = now;
            return Ok((
                batch,
                FetchOutcome {
                    sim_ms,
                    staleness_ms: 0,
                    recomputed: true,
                },
            ));
        }
        let batch = state.cache.clone().expect("cache present");
        Ok((
            batch,
            FetchOutcome {
                sim_ms: 0.05, // local cache read
                staleness_ms: now - state.cached_at_ms,
                recomputed: false,
            },
        ))
    }

    /// Explicitly recompute the view now.
    pub fn refresh(&self, name: &str) -> Result<f64> {
        let mut views = self.views.lock();
        let state = views
            .get_mut(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        let (batch, sim_ms) = self.compute(state)?;
        state.cache = Some(batch);
        state.cached_at_ms = self.clock.now_ms();
        Ok(sim_ms)
    }

    /// Change a view's policy ("the administrator was able to choose").
    pub fn set_policy(&self, name: &str, policy: RefreshPolicy) -> Result<()> {
        let mut views = self.views.lock();
        let state = views
            .get_mut(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        state.policy = policy;
        Ok(())
    }

    /// How many times the view was recomputed.
    pub fn refresh_count(&self, name: &str) -> usize {
        self.views
            .lock()
            .get(name)
            .map_or(0, |s| s.refresh_count)
    }

    /// Total simulated recomputation cost.
    pub fn total_refresh_ms(&self, name: &str) -> f64 {
        self.views
            .lock()
            .get(name)
            .map_or(0.0, |s| s.total_refresh_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema, Value};
    use eii_federation::{LinkProfile, RelationalConnector, WireFormat};
    use eii_storage::{Database, TableDef};
    use std::sync::Arc;

    fn setup() -> (Catalog, Federation, SimClock, eii_storage::database::TableHandle) {
        let clock = SimClock::new();
        let db = Database::new("crm", clock.clone());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("region", DataType::Str),
        ]));
        let t = db
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        for i in 0..10i64 {
            t.write().insert(row![i, format!("r{}", i % 2)]).unwrap();
        }
        let mut fed = Federation::new();
        fed.register(
            Arc::new(RelationalConnector::new(db)),
            LinkProfile::wan(),
            WireFormat::Native,
        )
        .unwrap();
        (Catalog::new(), fed, clock, t)
    }

    #[test]
    fn live_policy_always_recomputes() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Live)
            .unwrap();
        let (_, o1) = mgr.fetch("v").unwrap();
        let (_, o2) = mgr.fetch("v").unwrap();
        assert!(o1.recomputed && o2.recomputed);
        assert_eq!(mgr.refresh_count("v"), 2);
        assert_eq!(o2.staleness_ms, 0);
    }

    #[test]
    fn periodic_policy_serves_cache_within_interval() {
        let (cat, fed, clock, src) = setup();
        let mgr = MatViewManager::new(fed, clock.clone());
        mgr.define(
            "v",
            "SELECT id FROM crm.customers",
            &cat,
            RefreshPolicy::Periodic { interval_ms: 1000 },
        )
        .unwrap();
        let (b1, o1) = mgr.fetch("v").unwrap();
        assert!(o1.recomputed);
        // Source changes; cache does not see it yet.
        src.write().insert(row![100i64, "r9"]).unwrap();
        clock.advance_ms(500);
        let (b2, o2) = mgr.fetch("v").unwrap();
        assert!(!o2.recomputed);
        assert_eq!(o2.staleness_ms, 500);
        assert_eq!(b1.num_rows(), b2.num_rows(), "stale data served");
        assert!(o2.sim_ms < o1.sim_ms, "cache hits are cheap");
        // Past the interval the view recomputes and sees the change.
        clock.advance_ms(600);
        let (b3, o3) = mgr.fetch("v").unwrap();
        assert!(o3.recomputed);
        assert_eq!(b3.num_rows(), 11);
    }

    #[test]
    fn manual_policy_until_refresh() {
        let (cat, fed, clock, src) = setup();
        let mgr = MatViewManager::new(fed, clock.clone());
        mgr.define("v", "SELECT COUNT(*) AS n FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
        let (b1, _) = mgr.fetch("v").unwrap();
        assert_eq!(b1.rows()[0].get(0), &Value::Int(10));
        src.write().insert(row![100i64, "r9"]).unwrap();
        clock.advance_ms(10_000);
        let (b2, o2) = mgr.fetch("v").unwrap();
        assert!(!o2.recomputed);
        assert_eq!(b2.rows()[0].get(0), &Value::Int(10), "stale until refreshed");
        mgr.refresh("v").unwrap();
        let (b3, _) = mgr.fetch("v").unwrap();
        assert_eq!(b3.rows()[0].get(0), &Value::Int(11));
    }

    #[test]
    fn policy_can_change_at_runtime() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
        mgr.fetch("v").unwrap();
        mgr.set_policy("v", RefreshPolicy::Live).unwrap();
        let (_, o) = mgr.fetch("v").unwrap();
        assert!(o.recomputed);
    }

    #[test]
    fn unknown_view_not_found() {
        let (_, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        assert_eq!(mgr.fetch("ghost").unwrap_err().kind(), "not_found");
        assert_eq!(mgr.refresh("ghost").unwrap_err().kind(), "not_found");
    }

    #[test]
    fn duplicate_definition_rejected() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Live)
            .unwrap();
        assert_eq!(
            mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Live)
                .unwrap_err()
                .kind(),
            "already_exists"
        );
    }
}
