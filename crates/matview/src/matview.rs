//! Materialized views over the federation.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use eii_catalog::Catalog;
use eii_data::{Batch, EiiError, Result, SchemaRef, SimClock};
use eii_exec::{Executor, MatViewStore};
use eii_federation::{Federation, RequestCtx};
use eii_planner::{
    derive_maintenance_plan, optimize, FallbackReason, LogicalPlan, MaintenanceDecision,
    MatViewDef, PhysicalPlan, PhysicalPlanner, PlanBuilder, PlannerConfig,
};
use eii_sql::parse_query;

use crate::ivm::{changes_to_delta, IvmState, IvmStats, TableDeltas};

/// When a view's cached result is recomputed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshPolicy {
    /// Never cache: every fetch runs the federated query (fresh, slow).
    Live,
    /// Recompute when the cache is older than the interval.
    Periodic {
        /// Maximum cache age before a fetch recomputes, simulated ms.
        interval_ms: i64,
    },
    /// Recompute only on explicit [`MatViewManager::refresh`].
    Manual,
}

/// How a fetch was served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchOutcome {
    /// Simulated cost paid by this fetch (0-ish for cache hits).
    pub sim_ms: f64,
    /// Age of the served data, ms (0 when computed live).
    pub staleness_ms: i64,
    /// Whether the fetch ran the federated query.
    pub recomputed: bool,
}

/// Maintenance status of one view, for experiments and dashboards.
#[derive(Debug)]
pub struct IvmStatus {
    /// Whether refreshes apply change-log deltas instead of recomputing.
    pub incremental: bool,
    /// Why an incrementally-defined view fell back to full recompute.
    pub fallback: Option<FallbackReason>,
    /// Cumulative maintenance statistics (zeroed for non-incremental
    /// views).
    pub stats: IvmStats,
}

struct ViewState {
    plan: PhysicalPlan,
    /// The optimized logical definition, exported to the planner's
    /// answering-queries-using-views rewrite pass.
    logical: LogicalPlan,
    schema: SchemaRef,
    policy: RefreshPolicy,
    cache: Option<Batch>,
    cached_at_ms: i64,
    refresh_count: usize,
    total_refresh_ms: f64,
    /// Delta-maintenance state when the view is incrementally maintained.
    ivm: Option<IvmState>,
    /// Set when [`MatViewManager::define_incremental`] had to fall back.
    fallback: Option<FallbackReason>,
}

impl ViewState {
    /// Is the cached materialization servable at `now_ms` without a
    /// recompute? Periodic views are within their interval; manual views
    /// whenever materialized. Live views are servable only while
    /// incrementally maintained: eager on-write maintenance
    /// ([`Inner::on_base_write`]) keeps their cache exactly equal to a
    /// fresh recompute, so serving it *is* serving live data. A live view
    /// without IVM state recomputes on every fetch, as before.
    fn servable(&self, now_ms: i64) -> bool {
        self.cache.is_some()
            && match self.policy {
                RefreshPolicy::Live => self.ivm.is_some(),
                RefreshPolicy::Periodic { interval_ms } => {
                    now_ms - self.cached_at_ms < interval_ms
                }
                RefreshPolicy::Manual => true,
            }
    }
}

/// Manages a set of materialized views.
///
/// The state lives behind an `Arc` so the federation's write listener —
/// the hook that eagerly maintains [`RefreshPolicy::Live`] views — can
/// hold a *weak* handle back into the manager without a reference cycle
/// (the federation owns the listener, the listener upgrades per write, a
/// dropped manager silently unsubscribes).
pub struct MatViewManager {
    inner: Arc<Inner>,
}

struct Inner {
    federation: Federation,
    clock: SimClock,
    views: Mutex<BTreeMap<String, ViewState>>,
    store: MatViewStore,
}

impl MatViewManager {
    /// New manager over a federation. Subscribes to the federation's write
    /// stream: every successful write routed through a source handle
    /// eagerly maintains the [`RefreshPolicy::Live`] incrementally-
    /// maintained views that read the written table (writes applied
    /// directly to backing storage are picked up at the next maintenance
    /// round instead, like any other out-of-band change).
    pub fn new(federation: Federation, clock: SimClock) -> Self {
        let inner = Arc::new(Inner {
            federation,
            clock,
            views: Mutex::new(BTreeMap::new()),
            store: MatViewStore::new(),
        });
        let weak = Arc::downgrade(&inner);
        inner
            .federation
            .add_write_listener(Arc::new(move |source, table| {
                if let Some(inner) = weak.upgrade() {
                    inner.on_base_write(source, table);
                }
            }));
        MatViewManager { inner }
    }

    /// The shared row store every materialization is synced into. Hand a
    /// clone to [`Executor::with_matviews`] so rewritten plans can scan
    /// the views locally.
    pub fn store(&self) -> MatViewStore {
        self.inner.store.clone()
    }

    /// Definitions of every view whose materialization is servable at
    /// `now_ms` under its refresh policy, as plain data for
    /// [`eii_planner::rewrite_matviews`]. Live views (which must always
    /// recompute) and expired or never-materialized caches are excluded.
    pub fn defs(&self, now_ms: i64) -> Vec<MatViewDef> {
        self.inner
            .views
            .lock()
            .iter()
            .filter(|(_, s)| s.servable(now_ms))
            .map(|(name, s)| MatViewDef {
                name: name.clone(),
                plan: s.logical.clone(),
                schema: s.schema.clone(),
                rows: s.cache.as_ref().map_or(0, Batch::num_rows),
            })
            .collect()
    }

    /// Define a materialized view from SQL (planned once against the
    /// catalog and federation, with full optimization).
    pub fn define(
        &self,
        name: &str,
        sql: &str,
        catalog: &Catalog,
        policy: RefreshPolicy,
    ) -> Result<()> {
        self.define_inner(name, sql, catalog, policy, false)
            .map(|_| ())
    }

    /// Define a materialized view that refreshes by **delta propagation**:
    /// each refresh reads the base tables' change logs past the view's
    /// watermarks and pushes the deltas through the maintenance tree
    /// (O(delta), not O(data)). Views whose plans are not
    /// incrementalizable (see [`eii_planner::derive_maintenance_plan`])
    /// are still defined but refresh by full recompute; the returned
    /// [`FallbackReason`] says why.
    pub fn define_incremental(
        &self,
        name: &str,
        sql: &str,
        catalog: &Catalog,
        policy: RefreshPolicy,
    ) -> Result<Option<FallbackReason>> {
        self.define_inner(name, sql, catalog, policy, true)
    }

    fn define_inner(
        &self,
        name: &str,
        sql: &str,
        catalog: &Catalog,
        policy: RefreshPolicy,
        incremental: bool,
    ) -> Result<Option<FallbackReason>> {
        let mut views = self.inner.views.lock();
        if views.contains_key(name) {
            return Err(EiiError::AlreadyExists(format!("materialized view {name}")));
        }
        let query = parse_query(sql)?;
        let config = PlannerConfig::optimized();
        let federation = &self.inner.federation;
        let logical = PlanBuilder::new(catalog, federation).build(&query)?;
        let logical = optimize(logical, federation, &config)?;
        let schema = logical.schema()?;
        let plan = PhysicalPlanner::new(federation, &config).create(logical.clone())?;
        let (ivm, fallback) = if incremental {
            let metrics = federation.metrics();
            match derive_maintenance_plan(&logical) {
                // The plan walk cannot see connector capabilities: a source
                // without change-data capture (CSV files, document stores)
                // would pass validation and then fail every refresh. Probe
                // each base table's change log now and degrade to full
                // recompute instead.
                MaintenanceDecision::Incremental(mplan) => match mplan
                    .base_tables
                    .iter()
                    .find(|q| !self.inner.has_change_log(q))
                {
                    Some(q) => {
                        metrics.inc("ivm.fallbacks");
                        (None, Some(FallbackReason::NoChangeLog(q.clone())))
                    }
                    None => {
                        metrics.inc("ivm.views");
                        (Some(IvmState::build(&logical, &mplan.base_tables)?), None)
                    }
                },
                MaintenanceDecision::FullRecompute(reason) => {
                    metrics.inc("ivm.fallbacks");
                    (None, Some(reason))
                }
            }
        } else {
            (None, None)
        };
        let out = fallback.clone();
        views.insert(
            name.to_string(),
            ViewState {
                plan,
                logical,
                schema,
                policy,
                cache: None,
                cached_at_ms: 0,
                refresh_count: 0,
                total_refresh_ms: 0.0,
                ivm,
                fallback,
            },
        );
        Ok(out)
    }

    /// Remove a view entirely (definition, maintenance state, and its
    /// materialization in the shared store). Used to roll back a
    /// definition whose bootstrap refresh failed.
    pub fn drop_view(&self, name: &str) -> Result<()> {
        let mut views = self.inner.views.lock();
        views
            .remove(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        self.inner.store.remove(name);
        Ok(())
    }
}

impl Inner {
    /// Whether `qualified`'s connector exposes a change log, probed with
    /// an empty read past the maximum sequence number (the same probe the
    /// result cache's version check uses).
    fn has_change_log(&self, qualified: &str) -> bool {
        self.federation
            .resolve(qualified)
            .and_then(|(h, table)| h.connector().changes_since(&table, u64::MAX))
            .is_ok()
    }

    fn compute(&self, name: &str, state: &mut ViewState) -> Result<(Batch, f64)> {
        self.compute_ctx(name, state, None)
    }

    fn compute_ctx(
        &self,
        name: &str,
        state: &mut ViewState,
        ctx: Option<&RequestCtx>,
    ) -> Result<(Batch, f64)> {
        if state.ivm.is_some() {
            return self.apply_deltas(name, state, ctx);
        }
        if let Some(ctx) = ctx {
            ctx.check()?;
        }
        if state.fallback.is_some() {
            self.federation.metrics().inc("ivm.full_recomputes");
        }
        let exec = Executor::new(&self.federation);
        let res = exec.execute(&state.plan)?;
        state.refresh_count += 1;
        state.total_refresh_ms += res.cost.sim_ms;
        self.store
            .put(name, res.batch.clone(), self.clock.now_ms());
        Ok((res.batch, res.cost.sim_ms))
    }

    /// Incremental refresh: read each base table's change log past the
    /// view's watermark, push the weighted deltas through the maintenance
    /// tree, and materialize from the maintained multiset. Cost scales
    /// with the delta, not the base data. `ctx` (when given) is checked
    /// between per-table stages so deadlines and cancellation cut
    /// maintenance short.
    fn apply_deltas(
        &self,
        name: &str,
        state: &mut ViewState,
        ctx: Option<&RequestCtx>,
    ) -> Result<(Batch, f64)> {
        let metrics = self.federation.metrics();
        let now = self.clock.now_ms();
        if state.cache.is_some() {
            metrics.observe("ivm.staleness_ms", (now - state.cached_at_ms) as f64);
        }
        let ivm = state.ivm.as_mut().expect("delta path requires ivm state");
        let mut deltas = TableDeltas::new();
        let mut watermarks = Vec::new();
        for qualified in ivm.base_tables() {
            if let Some(ctx) = ctx {
                ctx.check()?;
            }
            let (handle, table) = self.federation.resolve(&qualified)?;
            let (changes, high) = handle
                .connector()
                .changes_since(&table, ivm.watermark(&qualified))?;
            watermarks.push((qualified.clone(), high));
            if !changes.is_empty() {
                deltas.insert(qualified, changes_to_delta(&changes));
            }
        }
        let delta_rows: usize = deltas.values().map(Vec::len).sum();
        let sim_ms = ivm.apply(&deltas, &watermarks)?;
        let batch = ivm.materialize()?;
        metrics.inc("ivm.refreshes");
        metrics.add("ivm.delta_rows", delta_rows as u64);
        metrics.observe("ivm.refresh_ms", sim_ms);
        state.refresh_count += 1;
        state.total_refresh_ms += sim_ms;
        self.store.put(name, batch.clone(), now);
        Ok((batch, sim_ms))
    }

    /// Eager-maintenance hook, fired (on the writer's thread, no
    /// federation lock held) after every successful write routed through
    /// the federation. Applies the change-log delta to each materialized
    /// [`RefreshPolicy::Live`] incrementally-maintained view that reads
    /// the written table, so those views stay exactly as fresh as a
    /// recompute. A maintenance failure *invalidates* the view's
    /// materialization instead of leaving stale rows servable — the next
    /// fetch recomputes.
    ///
    /// Lock order: views mutex, then the federation's source-registry
    /// read lock (inside `apply_deltas`) — the same order every refresh
    /// path uses.
    fn on_base_write(&self, source: &str, table: &str) {
        let qualified = format!("{source}.{table}");
        let mut views = self.views.lock();
        for (name, state) in views.iter_mut() {
            if !matches!(state.policy, RefreshPolicy::Live) || state.cache.is_none() {
                continue;
            }
            let reads_table = state
                .ivm
                .as_ref()
                .is_some_and(|ivm| ivm.base_tables().contains(&qualified));
            if !reads_table {
                continue;
            }
            match self.apply_deltas(name, state, None) {
                Ok((batch, _)) => {
                    state.cache = Some(batch);
                    state.cached_at_ms = self.clock.now_ms();
                }
                Err(_) => {
                    state.cache = None;
                    self.store.remove(name);
                }
            }
        }
    }
}

impl MatViewManager {
    /// Fetch the view's rows under its policy.
    pub fn fetch(&self, name: &str) -> Result<(Batch, FetchOutcome)> {
        let mut views = self.inner.views.lock();
        let state = views
            .get_mut(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        let now = self.inner.clock.now_ms();
        let recompute = !state.servable(now);
        if recompute {
            let (batch, sim_ms) = self.inner.compute(name, state)?;
            state.cache = Some(batch.clone());
            state.cached_at_ms = now;
            return Ok((
                batch,
                FetchOutcome {
                    sim_ms,
                    staleness_ms: 0,
                    recomputed: true,
                },
            ));
        }
        let batch = state.cache.clone().expect("cache present");
        Ok((
            batch,
            FetchOutcome {
                sim_ms: 0.05, // local cache read
                staleness_ms: now - state.cached_at_ms,
                recomputed: false,
            },
        ))
    }

    /// Explicitly recompute the view now (incrementally when the view is
    /// delta-maintained).
    pub fn refresh(&self, name: &str) -> Result<f64> {
        self.refresh_inner(name, None)
    }

    /// Like [`MatViewManager::refresh`], but checks the request context's
    /// deadline and cancellation token between per-table maintenance
    /// stages, so a scheduled refresh sheds cleanly under pressure.
    pub fn refresh_with_ctx(&self, name: &str, ctx: &RequestCtx) -> Result<f64> {
        self.refresh_inner(name, Some(ctx))
    }

    fn refresh_inner(&self, name: &str, ctx: Option<&RequestCtx>) -> Result<f64> {
        let mut views = self.inner.views.lock();
        let state = views
            .get_mut(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        let (batch, sim_ms) = self.inner.compute_ctx(name, state, ctx)?;
        state.cache = Some(batch);
        state.cached_at_ms = self.inner.clock.now_ms();
        Ok(sim_ms)
    }

    /// Maintenance status for one view.
    pub fn ivm_status(&self, name: &str) -> Result<IvmStatus> {
        let views = self.inner.views.lock();
        let state = views
            .get(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        Ok(IvmStatus {
            incremental: state.ivm.is_some(),
            fallback: state.fallback.clone(),
            stats: state.ivm.as_ref().map(IvmState::stats).unwrap_or_default(),
        })
    }

    /// The rendering of the view's optimized logical plan. The result
    /// cache keys entries by the same rendering, so a cached ad-hoc query
    /// matching the view's definition can be refreshed in place after an
    /// incremental maintenance round.
    pub fn plan_key(&self, name: &str) -> Result<String> {
        let views = self.inner.views.lock();
        let state = views
            .get(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        Ok(state.logical.display())
    }

    /// The qualified `source.table` names the view reads.
    pub fn base_tables(&self, name: &str) -> Result<Vec<String>> {
        let views = self.inner.views.lock();
        let state = views
            .get(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        if let Some(ivm) = &state.ivm {
            return Ok(ivm.base_tables());
        }
        let mut tables = Vec::new();
        collect_base_tables(&state.logical, &mut tables);
        tables.sort();
        tables.dedup();
        Ok(tables)
    }

    /// The view's current materialization, if one exists.
    pub fn cached(&self, name: &str) -> Result<Option<Batch>> {
        let views = self.inner.views.lock();
        let state = views
            .get(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        Ok(state.cache.clone())
    }

    /// Change a view's policy ("the administrator was able to choose").
    pub fn set_policy(&self, name: &str, policy: RefreshPolicy) -> Result<()> {
        let mut views = self.inner.views.lock();
        let state = views
            .get_mut(name)
            .ok_or_else(|| EiiError::NotFound(format!("materialized view {name}")))?;
        state.policy = policy;
        Ok(())
    }

    /// How many times the view was recomputed.
    pub fn refresh_count(&self, name: &str) -> usize {
        self.inner
            .views
            .lock()
            .get(name)
            .map_or(0, |s| s.refresh_count)
    }

    /// Total simulated recomputation cost.
    pub fn total_refresh_ms(&self, name: &str) -> f64 {
        self.inner
            .views
            .lock()
            .get(name)
            .map_or(0.0, |s| s.total_refresh_ms)
    }
}

fn collect_base_tables(plan: &LogicalPlan, out: &mut Vec<String>) {
    if let LogicalPlan::SourceScan { source, table, .. } = plan {
        out.push(format!("{source}.{table}"));
    }
    for child in plan.children() {
        collect_base_tables(child, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema, Value};
    use eii_federation::{LinkProfile, RelationalConnector, WireFormat};
    use eii_storage::{Database, TableDef};
    use std::sync::Arc;

    fn setup() -> (Catalog, Federation, SimClock, eii_storage::database::TableHandle) {
        let clock = SimClock::new();
        let db = Database::new("crm", clock.clone());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("region", DataType::Str),
        ]));
        let t = db
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        for i in 0..10i64 {
            t.write().insert(row![i, format!("r{}", i % 2)]).unwrap();
        }
        let fed = Federation::new();
        fed.register(
            Arc::new(RelationalConnector::new(db)),
            LinkProfile::wan(),
            WireFormat::Native,
        )
        .unwrap();
        (Catalog::new(), fed, clock, t)
    }

    #[test]
    fn live_policy_always_recomputes() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Live)
            .unwrap();
        let (_, o1) = mgr.fetch("v").unwrap();
        let (_, o2) = mgr.fetch("v").unwrap();
        assert!(o1.recomputed && o2.recomputed);
        assert_eq!(mgr.refresh_count("v"), 2);
        assert_eq!(o2.staleness_ms, 0);
    }

    #[test]
    fn periodic_policy_serves_cache_within_interval() {
        let (cat, fed, clock, src) = setup();
        let mgr = MatViewManager::new(fed, clock.clone());
        mgr.define(
            "v",
            "SELECT id FROM crm.customers",
            &cat,
            RefreshPolicy::Periodic { interval_ms: 1000 },
        )
        .unwrap();
        let (b1, o1) = mgr.fetch("v").unwrap();
        assert!(o1.recomputed);
        // Source changes; cache does not see it yet.
        src.write().insert(row![100i64, "r9"]).unwrap();
        clock.advance_ms(500);
        let (b2, o2) = mgr.fetch("v").unwrap();
        assert!(!o2.recomputed);
        assert_eq!(o2.staleness_ms, 500);
        assert_eq!(b1.num_rows(), b2.num_rows(), "stale data served");
        assert!(o2.sim_ms < o1.sim_ms, "cache hits are cheap");
        // Past the interval the view recomputes and sees the change.
        clock.advance_ms(600);
        let (b3, o3) = mgr.fetch("v").unwrap();
        assert!(o3.recomputed);
        assert_eq!(b3.num_rows(), 11);
    }

    #[test]
    fn manual_policy_until_refresh() {
        let (cat, fed, clock, src) = setup();
        let mgr = MatViewManager::new(fed, clock.clone());
        mgr.define("v", "SELECT COUNT(*) AS n FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
        let (b1, _) = mgr.fetch("v").unwrap();
        assert_eq!(b1.rows()[0].get(0), &Value::Int(10));
        src.write().insert(row![100i64, "r9"]).unwrap();
        clock.advance_ms(10_000);
        let (b2, o2) = mgr.fetch("v").unwrap();
        assert!(!o2.recomputed);
        assert_eq!(b2.rows()[0].get(0), &Value::Int(10), "stale until refreshed");
        mgr.refresh("v").unwrap();
        let (b3, _) = mgr.fetch("v").unwrap();
        assert_eq!(b3.rows()[0].get(0), &Value::Int(11));
    }

    #[test]
    fn policy_can_change_at_runtime() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
        mgr.fetch("v").unwrap();
        mgr.set_policy("v", RefreshPolicy::Live).unwrap();
        let (_, o) = mgr.fetch("v").unwrap();
        assert!(o.recomputed);
    }

    #[test]
    fn defs_export_only_servable_views() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock.clone());
        mgr.define("live", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Live)
            .unwrap();
        mgr.define(
            "periodic",
            "SELECT id FROM crm.customers",
            &cat,
            RefreshPolicy::Periodic { interval_ms: 1000 },
        )
        .unwrap();
        mgr.define("manual", "SELECT region FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
        // Nothing materialized yet: nothing servable.
        assert!(mgr.defs(clock.now_ms()).is_empty());
        mgr.fetch("live").unwrap();
        mgr.fetch("periodic").unwrap();
        mgr.refresh("manual").unwrap();
        let defs = mgr.defs(clock.now_ms());
        let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        // Live views must always recompute, so they never export.
        assert_eq!(names, vec!["manual", "periodic"]);
        assert!(defs.iter().all(|d| d.rows == 10));
        // Past its interval the periodic view's cache expires out.
        clock.advance_ms(5000);
        let names: Vec<String> = mgr
            .defs(clock.now_ms())
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(names, vec!["manual".to_string()]);
    }

    #[test]
    fn materializations_sync_into_the_shared_store() {
        let (cat, fed, clock, src) = setup();
        let mgr = MatViewManager::new(fed, clock);
        let store = mgr.store();
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
        assert!(store.get("v").is_none());
        mgr.fetch("v").unwrap();
        assert_eq!(store.get("v").unwrap().0.num_rows(), 10);
        src.write().insert(row![100i64, "r9"]).unwrap();
        mgr.refresh("v").unwrap();
        assert_eq!(store.get("v").unwrap().0.num_rows(), 11);
    }

    #[test]
    fn incremental_view_bootstraps_then_tracks_deltas() {
        let (cat, fed, clock, src) = setup();
        let mgr = MatViewManager::new(fed, clock);
        let fallback = mgr
            .define_incremental(
                "v",
                "SELECT id FROM crm.customers WHERE region = 'r1'",
                &cat,
                RefreshPolicy::Manual,
            )
            .unwrap();
        assert!(fallback.is_none());
        // Bootstrap replays the full change log (10 inserts).
        mgr.refresh("v").unwrap();
        assert_eq!(mgr.cached("v").unwrap().unwrap().num_rows(), 5);
        let s = mgr.ivm_status("v").unwrap();
        assert!(s.incremental && s.fallback.is_none());
        assert_eq!((s.stats.refreshes, s.stats.input_rows), (1, 10));
        // Steady state: one insert, one update out of the view, one delete.
        src.write().insert(row![100i64, "r1"]).unwrap();
        src.write()
            .update_by_pk(&Value::Int(1), &[(1, Value::from("r9"))])
            .unwrap();
        src.write().delete_by_pk(&Value::Int(3));
        mgr.refresh("v").unwrap();
        let batch = mgr.cached("v").unwrap().unwrap();
        // Started with odd ids {1,3,5,7,9}; 1 left the region, 3 deleted,
        // 100 arrived.
        assert_eq!(
            batch.rows().to_vec(),
            vec![row![5i64], row![7i64], row![9i64], row![100i64]]
        );
        let s = mgr.ivm_status("v").unwrap();
        // The second refresh consumed 4 delta rows (insert + update's
        // retract/insert pair + delete), not the whole table.
        assert_eq!((s.stats.refreshes, s.stats.input_rows), (2, 14));
        assert_eq!(mgr.base_tables("v").unwrap(), vec!["crm.customers"]);
    }

    #[test]
    fn live_ivm_view_is_maintained_eagerly_on_write() {
        use eii_federation::UpdateOp;
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed.clone(), clock.clone());
        let fallback = mgr
            .define_incremental(
                "v",
                "SELECT id FROM crm.customers WHERE region = 'r1'",
                &cat,
                RefreshPolicy::Live,
            )
            .unwrap();
        assert!(fallback.is_none());
        mgr.refresh("v").unwrap(); // bootstrap
        assert_eq!(mgr.cached("v").unwrap().unwrap().num_rows(), 5);
        let before = mgr.ivm_status("v").unwrap().stats.refreshes;
        // A write routed through the federation maintains the view
        // eagerly, before anyone fetches it.
        let h = fed.source("crm").unwrap();
        h.update(&UpdateOp::Insert {
            table: "customers".into(),
            row: row![100i64, "r1"],
        })
        .unwrap();
        assert_eq!(mgr.cached("v").unwrap().unwrap().num_rows(), 6);
        assert_eq!(mgr.ivm_status("v").unwrap().stats.refreshes, before + 1);
        // Eagerly maintained live views are servable: fetches hit the
        // cache and the view exports to the rewrite pass.
        let (batch, o) = mgr.fetch("v").unwrap();
        assert!(!o.recomputed, "live IVM serves the maintained cache");
        assert_eq!(batch.num_rows(), 6);
        let names: Vec<String> = mgr
            .defs(clock.now_ms())
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(names, vec!["v".to_string()]);
        // Writes to unrelated tables leave the maintenance count alone.
        h.update(&UpdateOp::Insert {
            table: "ghost".into(),
            row: row![1i64],
        })
        .unwrap_err();
        assert_eq!(mgr.ivm_status("v").unwrap().stats.refreshes, before + 1);
    }

    #[test]
    fn source_without_change_log_falls_back_to_recompute() {
        use eii_federation::CsvConnector;
        let (cat, fed, clock, _) = setup();
        let csv = CsvConnector::new("files")
            .add_file(
                "extras",
                "id|label\n1|a\n2|b\n",
                '|',
                &[DataType::Int, DataType::Str],
            )
            .unwrap();
        fed.register(Arc::new(csv), LinkProfile::wan(), WireFormat::Native)
            .unwrap();
        let mgr = MatViewManager::new(fed, clock);
        // The plan is perfectly incrementalizable, but CSV files expose no
        // change log: the view must degrade to full recompute instead of
        // erroring on every refresh.
        let fallback = mgr
            .define_incremental(
                "v",
                "SELECT id, label FROM files.extras",
                &cat,
                RefreshPolicy::Manual,
            )
            .unwrap();
        assert_eq!(
            fallback,
            Some(FallbackReason::NoChangeLog("files.extras".into()))
        );
        mgr.refresh("v").unwrap();
        assert_eq!(mgr.cached("v").unwrap().unwrap().num_rows(), 2);
        let s = mgr.ivm_status("v").unwrap();
        assert!(!s.incremental && s.fallback.is_some());
    }

    #[test]
    fn drop_view_rolls_back_a_definition() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
        mgr.refresh("v").unwrap();
        assert!(mgr.store().get("v").is_some());
        mgr.drop_view("v").unwrap();
        assert!(mgr.store().get("v").is_none());
        assert_eq!(mgr.fetch("v").unwrap_err().kind(), "not_found");
        assert_eq!(mgr.drop_view("v").unwrap_err().kind(), "not_found");
        // The name is free for redefinition.
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Manual)
            .unwrap();
    }

    #[test]
    fn non_incrementalizable_view_falls_back_to_recompute() {
        let (cat, fed, clock, src) = setup();
        let mgr = MatViewManager::new(fed, clock);
        let fallback = mgr
            .define_incremental(
                "v",
                "SELECT id FROM crm.customers ORDER BY id LIMIT 3",
                &cat,
                RefreshPolicy::Manual,
            )
            .unwrap();
        assert!(fallback.is_some(), "ORDER BY/LIMIT must fall back");
        let s = mgr.ivm_status("v").unwrap();
        assert!(!s.incremental && s.fallback.is_some());
        // The view still refreshes correctly, just by full recompute.
        mgr.refresh("v").unwrap();
        assert_eq!(mgr.cached("v").unwrap().unwrap().num_rows(), 3);
        src.write().delete_by_pk(&Value::Int(0));
        mgr.refresh("v").unwrap();
        assert_eq!(
            mgr.cached("v").unwrap().unwrap().rows()[0],
            row![1i64]
        );
    }

    #[test]
    fn incremental_matches_full_recompute_after_churn() {
        let (cat, fed, clock, src) = setup();
        let mgr = MatViewManager::new(fed, clock);
        let sql = "SELECT region, COUNT(*) AS n, SUM(id) AS total \
                   FROM crm.customers GROUP BY region";
        mgr.define_incremental("inc", sql, &cat, RefreshPolicy::Manual)
            .unwrap();
        mgr.define("full", sql, &cat, RefreshPolicy::Manual).unwrap();
        for i in 10..30i64 {
            src.write().insert(row![i, format!("r{}", i % 3)]).unwrap();
            if i % 4 == 0 {
                src.write().delete_by_pk(&Value::Int(i - 5));
            }
            mgr.refresh("inc").unwrap();
        }
        mgr.refresh("full").unwrap();
        let mut inc = mgr.cached("inc").unwrap().unwrap().rows().to_vec();
        let mut full = mgr.cached("full").unwrap().unwrap().rows().to_vec();
        inc.sort();
        full.sort();
        assert_eq!(inc, full);
        assert!(mgr.ivm_status("inc").unwrap().incremental);
    }

    #[test]
    fn unknown_view_not_found() {
        let (_, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        assert_eq!(mgr.fetch("ghost").unwrap_err().kind(), "not_found");
        assert_eq!(mgr.refresh("ghost").unwrap_err().kind(), "not_found");
    }

    #[test]
    fn duplicate_definition_rejected() {
        let (cat, fed, clock, _) = setup();
        let mgr = MatViewManager::new(fed, clock);
        mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Live)
            .unwrap();
        assert_eq!(
            mgr.define("v", "SELECT id FROM crm.customers", &cat, RefreshPolicy::Live)
                .unwrap_err()
                .kind(),
            "already_exists"
        );
    }
}
