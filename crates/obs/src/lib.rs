//! # eii-obs
//!
//! The observability core of the EII engine: query tracing and metrics.
//!
//! The paper's performance arguments — pushdown opportunity, bytes shipped,
//! round trips, and the cost of live sources that are "slow, unavailable, or
//! return errors" — are only arguments if they are *measurable*. This crate
//! provides the two primitives the rest of the engine threads through its
//! hot paths:
//!
//! - [`Tracer`] / [`SpanGuard`] / [`QueryTrace`]: nested spans timed by both
//!   the shared [`eii_data::SimClock`] (simulated milliseconds) and the wall
//!   clock, collected into a per-query tree covering parse → plan →
//!   optimize → execute.
//! - [`MetricsRegistry`]: named counters, gauges, and fixed-bucket
//!   histograms with cheap atomic recording and a [`MetricsRegistry::snapshot`]
//!   for tests and the bench harness.
//!
//! Both are deliberately zero-dependency (standard library atomics and
//! mutexes only) so every crate in the workspace can afford to depend on
//! them, and both are cheap enough to stay always-on: recording a counter is
//! one atomic add, and a span is two clock reads plus one `Vec` push.

#![deny(missing_docs)]

pub mod metrics;
pub mod span;

pub use metrics::{
    Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, DEFAULT_MS_BUCKETS,
};
pub use span::{QueryTrace, SpanGuard, SpanRecord, Tracer};
