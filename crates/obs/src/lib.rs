//! # eii-obs
//!
//! The observability core of the EII engine: query tracing, metrics, and
//! the workload telemetry pipeline.
//!
//! The paper's performance arguments — pushdown opportunity, bytes shipped,
//! round trips, and the cost of live sources that are "slow, unavailable, or
//! return errors" — are only arguments if they are *measurable*. This crate
//! provides the primitives the rest of the engine threads through its hot
//! paths:
//!
//! - [`Tracer`] / [`SpanGuard`] / [`QueryTrace`]: nested spans timed by both
//!   the shared [`eii_data::SimClock`] (simulated milliseconds) and the wall
//!   clock, collected into a per-query tree covering parse → plan →
//!   optimize → execute.
//! - [`MetricsRegistry`]: named counters, gauges, fixed-bucket histograms,
//!   and [`QuantileSketch`]es with cheap recording and a
//!   [`MetricsRegistry::snapshot`] for tests and the bench harness; it also
//!   embeds the [`EventLog`] of trace-stamped resilience events.
//! - [`QueryLog`]: the durable workload log — a bounded ring of sampled,
//!   serializable [`QueryLogRecord`]s plus exact per-fingerprint aggregates
//!   with [`QueryLog::top_k`] workload rankings (the matview advisor's
//!   future input).
//! - [`TraceStore`]: last-N trace retention with deterministic sampling and
//!   tail-sampling (errors / hedges / sheds / cancels always kept), plus
//!   Chrome trace-event export ([`chrome_trace_json`]) loadable in Perfetto.
//! - [`SloMonitor`]: per-priority latency/availability objectives evaluated
//!   as multi-window burn rates on the virtual clock.
//!
//! The tracing and metrics primitives use standard-library atomics and
//! mutexes only, so every crate in the workspace can afford to depend on
//! them and recording can stay always-on: a counter is one atomic add, a
//! span is two clock reads plus one `Vec` push. Serialization goes through
//! the workspace-vendored `serde`/`serde_json` shims.

#![deny(missing_docs)]

pub mod metrics;
pub mod querylog;
pub mod sketch;
pub mod slo;
pub mod span;
pub mod tracestore;

pub use metrics::{
    Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, DEFAULT_MS_BUCKETS,
};
pub use querylog::{
    fingerprint64, FingerprintStats, OperatorStat, QueryLog, QueryLogRecord, StatementFlags,
    WorkloadKey,
};
pub use sketch::{QuantileSketch, SketchSample, SketchSnapshot, DEFAULT_SKETCH_EPSILON};
pub use slo::{SloMonitor, SloObjective, SloState, SloStatus, SloWindow, WindowBurn};
pub use span::{QueryTrace, SpanGuard, SpanRecord, Tracer};
pub use tracestore::{chrome_trace_json, EventLog, StoredTrace, TelemetryEvent, TraceStore};
