//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Recording is an atomic add on a cached handle (or one short map lookup
//! when recording by name), so instrumentation can stay always-on.
//! [`MetricsRegistry::snapshot`] produces an owned, serializable
//! [`MetricsSnapshot`] for tests, the bench harness, and health reports.
//!
//! Naming convention (see `docs/observability.md` for the full catalog):
//! dot-separated lowercase, with the variable element in the middle —
//! `source.<name>.bytes_shipped`, `breaker.<name>.to_open`,
//! `exec.rows_emitted.<operator>`, `query.exec_sim_ms`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::sketch::{QuantileSketch, SketchSnapshot};
use crate::tracestore::{EventLog, TelemetryEvent};

/// Histogram bucket upper bounds (inclusive) used when a histogram is
/// created through [`MetricsRegistry::observe`]: tuned for millisecond
/// latencies from sub-millisecond hub work to multi-second outages.
pub const DEFAULT_MS_BUCKETS: [f64; 10] =
    [0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0];

/// A cached counter handle: one atomic add per record.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. Observations are `f64`s (milliseconds by
/// convention); the sum is kept in thousandths for atomic accumulation.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus a final overflow slot.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_millis: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_millis: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_millis
            .fetch_add((v.max(0.0) * 1000.0).round() as u64, Ordering::Relaxed);
    }

    /// Owned snapshot of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            count: self.total.load(Ordering::Relaxed),
            sum: self.sum_millis.load(Ordering::Relaxed) as f64 / 1000.0,
        }
    }
}

/// Owned view of a histogram at one instant.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive); the last implicit bucket is +inf.
    pub bounds: Vec<f64>,
    /// Observations per bucket (`bounds.len() + 1` slots, last = overflow).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (thousandth precision).
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    sketches: Mutex<BTreeMap<String, Arc<Mutex<QuantileSketch>>>>,
    events: EventLog,
}

/// A shared registry of named metrics. Cloning shares the registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get-or-create a counter handle; cache it to skip the name lookup on
    /// hot paths.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("metrics lock");
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::default();
                map.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Add 1 to the named counter.
    pub fn inc(&self, name: &str) {
        self.counter(name).inc();
    }

    /// Add `v` to the named counter.
    pub fn add(&self, name: &str, v: u64) {
        self.counter(name).add(v);
    }

    /// Current value of the named counter (0 when never recorded).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .expect("metrics lock")
            .get(name)
            .map(Counter::value)
            .unwrap_or(0)
    }

    /// Set the named gauge.
    pub fn set_gauge(&self, name: &str, v: i64) {
        let mut map = self.inner.gauges.lock().expect("metrics lock");
        map.entry(name.to_string())
            .or_default()
            .store(v, Ordering::Relaxed);
    }

    /// Current value of the named gauge (0 when never set).
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.inner
            .gauges
            .lock()
            .expect("metrics lock")
            .get(name)
            .map(|g| g.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Get-or-create a histogram with explicit bucket bounds. Bounds are
    /// fixed at creation; later calls with different bounds reuse the
    /// existing histogram.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock().expect("metrics lock");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Record one observation into the named histogram, creating it with
    /// [`DEFAULT_MS_BUCKETS`] if needed.
    pub fn observe(&self, name: &str, v: f64) {
        self.histogram(name, &DEFAULT_MS_BUCKETS).observe(v);
    }

    /// Get-or-create the named quantile sketch.
    pub fn sketch(&self, name: &str) -> Arc<Mutex<QuantileSketch>> {
        let mut map = self.inner.sketches.lock().expect("metrics lock");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(QuantileSketch::new())))
            .clone()
    }

    /// Record one observation into the named quantile sketch (exact
    /// percentiles, unlike the fixed-bucket histograms).
    pub fn record_quantile(&self, name: &str, v: f64) {
        let sketch = self.sketch(name);
        sketch.lock().expect("sketch lock").insert(v);
    }

    /// Owned snapshot of the named sketch (empty snapshot when absent).
    pub fn sketch_snapshot(&self, name: &str) -> SketchSnapshot {
        let map = self.inner.sketches.lock().expect("metrics lock");
        map.get(name)
            .map(|s| s.lock().expect("sketch lock").snapshot())
            .unwrap_or_default()
    }

    /// The embedded telemetry event log (hedge fires, breaker
    /// transitions, shed decisions — stamped with trace IDs).
    pub fn events(&self) -> &EventLog {
        &self.inner.events
    }

    /// Append one telemetry event to the embedded event log.
    pub fn record_event(&self, event: TelemetryEvent) {
        self.inner.events.record(event);
    }

    /// Owned snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            sketches: self
                .inner
                .sketches
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.lock().expect("sketch lock").snapshot()))
                .collect(),
        }
    }

    /// Drop every metric (between experiment trials).
    pub fn reset(&self) {
        self.inner.counters.lock().expect("metrics lock").clear();
        self.inner.gauges.lock().expect("metrics lock").clear();
        self.inner.histograms.lock().expect("metrics lock").clear();
        self.inner.sketches.lock().expect("metrics lock").clear();
        self.inner.events.clear();
    }
}

/// Owned view of a whole registry at one instant.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Quantile-sketch snapshots by name.
    pub sketches: BTreeMap<String, SketchSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = MetricsRegistry::new();
        m.inc("q.count");
        m.add("q.count", 2);
        let cached = m.counter("q.count");
        cached.inc();
        assert_eq!(m.counter_value("q.count"), 4);
        assert_eq!(m.counter_value("never"), 0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("q.count"), 4);
        m.reset();
        assert_eq!(m.counter_value("q.count"), 0);
        // The old snapshot is unaffected by the reset.
        assert_eq!(snap.counter("q.count"), 4);
    }

    #[test]
    fn clones_share_the_registry() {
        let a = MetricsRegistry::new();
        let b = a.clone();
        a.inc("x");
        assert_eq!(b.counter_value("x"), 1);
    }

    #[test]
    fn gauges_hold_the_latest_value() {
        let m = MetricsRegistry::new();
        m.set_gauge("breaker.crm.state", 1);
        m.set_gauge("breaker.crm.state", 2);
        assert_eq!(m.gauge_value("breaker.crm.state"), 2);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let m = MetricsRegistry::new();
        let h = m.histogram("lat", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 1, 1]);
        assert_eq!(snap.count, 3);
        assert!((snap.mean() - 35.166).abs() < 0.01);
        // observe() by name reuses the registered bounds.
        m.observe("lat", 0.2);
        assert_eq!(m.snapshot().histograms["lat"].counts[0], 2);
    }

    #[test]
    fn counter_sum_by_prefix() {
        let m = MetricsRegistry::new();
        m.add("exec.rows_emitted.source", 10);
        m.add("exec.rows_emitted.hash_join", 5);
        m.add("other", 99);
        assert_eq!(m.snapshot().counter_sum("exec.rows_emitted."), 15);
    }

    #[test]
    fn sketches_and_events_ride_the_registry() {
        let m = MetricsRegistry::new();
        m.record_quantile("source.crm.latency_ms", 10.0);
        m.record_quantile("source.crm.latency_ms", 30.0);
        let snap = m.sketch_snapshot("source.crm.latency_ms");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.p50, 10.0);
        assert_eq!(snap.max, 30.0);
        assert_eq!(m.snapshot().sketches["source.crm.latency_ms"].count, 2);
        m.record_event(TelemetryEvent {
            sim_ms: 1.0,
            kind: "hedge.fired".into(),
            source: "crm".into(),
            trace_id: Some(7),
            detail: String::new(),
        });
        assert_eq!(m.events().events_of_kind("hedge.fired").len(), 1);
        m.reset();
        assert_eq!(m.sketch_snapshot("source.crm.latency_ms").count, 0);
        assert!(m.events().events().is_empty());
    }

    #[test]
    fn snapshot_serializes() {
        let m = MetricsRegistry::new();
        m.inc("a.b");
        m.set_gauge("g", -3);
        m.observe("h", 2.0);
        let json = serde_json::to_string(&m.snapshot()).unwrap();
        assert!(json.contains("\"a.b\":1"), "{json}");
        assert!(json.contains("\"g\":-3"), "{json}");
    }
}
