//! Durable workload query log: a bounded ring of serializable
//! per-statement records plus exact per-fingerprint aggregates.
//!
//! Every executed statement produces a [`QueryLogRecord`] keyed by a
//! **normalized-plan fingerprint** (FNV-1a of the optimized logical plan's
//! display form, so literal-identical statements collapse to one workload
//! entry). Two retention tiers keep the log useful at any scale:
//!
//! * **Aggregates** ([`FingerprintStats`]) are updated for *every*
//!   statement — counts, bytes shipped, sim-time, flag tallies. They are
//!   order-independent, so same-seed concurrent runs produce bit-identical
//!   aggregate tables (E18's determinism gate) and
//!   [`QueryLog::top_k`] gives exact workload rankings for the future
//!   matview advisor.
//! * **Records** are sampled into a bounded ring: every
//!   `sample_every`-th occurrence of a fingerprint is kept
//!   (deterministic — a function of the per-fingerprint sequence number,
//!   not of a global RNG), and *noteworthy* statements (errors, shed,
//!   cancelled, hedged, deadline-bound) are always kept so rare failures
//!   survive sampling.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use serde::Serialize;

/// FNV-1a offset basis (matches `bench::chaos::trace_fingerprint`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a normalized plan string — the workload fingerprint.
pub fn fingerprint64(text: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Outcome flags for one statement; drives tail-sampling and top-k slices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StatementFlags {
    /// Served from the semantic result cache (fresh or stale hit).
    pub cached: bool,
    /// At least one subtree rewritten to a materialized view.
    pub matview: bool,
    /// A hedged backup request fired during execution.
    pub hedged: bool,
    /// Rejected by brownout admission (no execution happened).
    pub shed: bool,
    /// Completed with degraded (stale-fallback or brownout-partial) data.
    pub degraded: bool,
    /// Aborted by cooperative cancellation or a deadline.
    pub cancelled: bool,
}

impl StatementFlags {
    /// Whether this statement should bypass sampling (tail-sampling keep).
    pub fn noteworthy(&self) -> bool {
        self.hedged || self.shed || self.degraded || self.cancelled
    }

    /// Compact render like `cached|hedged` for headers and reports.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        if self.cached {
            parts.push("cached");
        }
        if self.matview {
            parts.push("matview");
        }
        if self.hedged {
            parts.push("hedged");
        }
        if self.shed {
            parts.push("shed");
        }
        if self.degraded {
            parts.push("degraded");
        }
        if self.cancelled {
            parts.push("cancelled");
        }
        parts.join("|")
    }
}

/// Per-operator estimated-vs-actual stats carried on a log record.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OperatorStat {
    /// Path of the operator in the physical tree, e.g. `0.1`.
    pub path: String,
    /// Operator label, e.g. `HashJoin`.
    pub label: String,
    /// Optimizer-estimated output rows.
    pub est_rows: u64,
    /// Observed output rows.
    pub actual_rows: u64,
    /// Observed bytes through the operator.
    pub bytes: u64,
    /// Simulated milliseconds attributed to the operator.
    pub sim_ms: f64,
}

/// One statement's telemetry record — everything the workload advisor or a
/// post-incident review needs, serializable via the serde shim.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QueryLogRecord {
    /// Normalized-plan fingerprint (FNV-1a of the optimized plan display).
    pub fingerprint: u64,
    /// Normalized plan text the fingerprint was computed from.
    pub plan: String,
    /// The statement's SQL text as submitted — the advisor re-plans
    /// candidate views from this, so top-k workload entries stay
    /// actionable without grepping traces.
    pub sql: String,
    /// Session label, when the statement ran through a labelled session.
    pub session: Option<String>,
    /// Access-control role the statement ran under.
    pub role: String,
    /// Priority tier (`low` / `normal` / `high`).
    pub priority: String,
    /// Virtual-clock timestamp when execution started.
    pub start_sim_ms: f64,
    /// Simulated execution time.
    pub sim_ms: f64,
    /// Wall-clock execution time in microseconds.
    pub wall_us: u64,
    /// Rows returned.
    pub rows: u64,
    /// Total bytes shipped from remote sources for this statement.
    pub bytes_shipped: u64,
    /// Per-source bytes shipped, sorted by source name.
    pub per_source_bytes: Vec<(String, u64)>,
    /// Per-operator estimated-vs-actual stats (empty for cache hits).
    pub operators: Vec<OperatorStat>,
    /// Deadline budget in simulated ms, when one was set.
    pub deadline_budget_ms: Option<f64>,
    /// Simulated ms actually spent against the deadline budget.
    pub deadline_spent_ms: Option<f64>,
    /// Outcome flags.
    pub flags: StatementFlags,
    /// Error kind when the statement failed (e.g. `deadline`, `shed`).
    pub error: Option<String>,
    /// Trace ID when the statement's trace was retained in the store.
    pub trace_id: Option<u64>,
}

/// Exact aggregate for one fingerprint, updated on every statement.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FingerprintStats {
    /// Normalized-plan fingerprint.
    pub fingerprint: u64,
    /// Normalized plan text (first seen).
    pub plan: String,
    /// Representative SQL text (first seen) — what the advisor feeds back
    /// into the planner to define a candidate view for this fingerprint.
    pub sql: String,
    /// Statements observed.
    pub count: u64,
    /// Statements that returned an error.
    pub errors: u64,
    /// Total simulated ms.
    pub total_sim_ms: f64,
    /// Worst single-statement simulated ms.
    pub max_sim_ms: f64,
    /// Total bytes shipped.
    pub total_bytes: u64,
    /// Total rows returned.
    pub total_rows: u64,
    /// Statements served from cache.
    pub cached: u64,
    /// Statements that used a matview rewrite.
    pub matview: u64,
    /// Statements where a hedge fired.
    pub hedged: u64,
    /// Statements shed by admission control.
    pub shed: u64,
    /// Statements completing degraded.
    pub degraded: u64,
    /// Statements cancelled or deadline-aborted.
    pub cancelled: u64,
}

impl FingerprintStats {
    /// Mean simulated ms per statement.
    pub fn mean_sim_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_sim_ms / self.count as f64
        }
    }
}

/// Ranking key for [`QueryLog::top_k`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKey {
    /// Most frequently executed fingerprints.
    Count,
    /// Heaviest fingerprints by total bytes shipped from sources.
    BytesShipped,
    /// Heaviest fingerprints by total simulated time.
    SimMs,
    /// Fingerprints with the most errors.
    Errors,
}

#[derive(Debug, Default)]
struct LogInner {
    ring: VecDeque<QueryLogRecord>,
    stats: BTreeMap<u64, FingerprintStats>,
    seen: u64,
    kept: u64,
}

/// Bounded, sampled, thread-safe workload log. Cloning shares the ring.
#[derive(Debug, Clone)]
pub struct QueryLog {
    inner: Arc<Mutex<LogInner>>,
    capacity: usize,
    sample_every: u64,
}

impl Default for QueryLog {
    fn default() -> Self {
        QueryLog::new(1024, 16)
    }
}

impl QueryLog {
    /// A log retaining at most `capacity` sampled records, keeping every
    /// `sample_every`-th occurrence of each fingerprint (1 = keep all).
    pub fn new(capacity: usize, sample_every: u64) -> Self {
        QueryLog {
            inner: Arc::new(Mutex::new(LogInner::default())),
            capacity: capacity.max(1),
            sample_every: sample_every.max(1),
        }
    }

    /// Record one statement. Aggregates always update; the full record is
    /// retained when its per-fingerprint sequence number samples in or the
    /// outcome is noteworthy (error / hedge / shed / cancel / deadline).
    pub fn record(&self, record: QueryLogRecord) {
        let mut inner = self.inner.lock().expect("query log poisoned");
        inner.seen += 1;
        let stats = inner
            .stats
            .entry(record.fingerprint)
            .or_insert_with(|| FingerprintStats {
                fingerprint: record.fingerprint,
                plan: record.plan.clone(),
                sql: record.sql.clone(),
                ..FingerprintStats::default()
            });
        stats.count += 1;
        stats.total_sim_ms += record.sim_ms;
        if record.sim_ms > stats.max_sim_ms {
            stats.max_sim_ms = record.sim_ms;
        }
        stats.total_bytes += record.bytes_shipped;
        stats.total_rows += record.rows;
        if record.error.is_some() {
            stats.errors += 1;
        }
        if record.flags.cached {
            stats.cached += 1;
        }
        if record.flags.matview {
            stats.matview += 1;
        }
        if record.flags.hedged {
            stats.hedged += 1;
        }
        if record.flags.shed {
            stats.shed += 1;
        }
        if record.flags.degraded {
            stats.degraded += 1;
        }
        if record.flags.cancelled {
            stats.cancelled += 1;
        }
        let seq = stats.count;
        let keep = record.error.is_some()
            || record.flags.noteworthy()
            || record.deadline_budget_ms.is_some()
            || (seq - 1).is_multiple_of(self.sample_every);
        if keep {
            inner.kept += 1;
            inner.ring.push_back(record);
            while inner.ring.len() > self.capacity {
                inner.ring.pop_front();
            }
        }
    }

    /// Statements observed (sampled or not).
    pub fn seen(&self) -> u64 {
        self.inner.lock().expect("query log poisoned").seen
    }

    /// Records retained by sampling (may exceed ring length if old
    /// records were evicted).
    pub fn kept(&self) -> u64 {
        self.inner.lock().expect("query log poisoned").kept
    }

    /// Sampled records, oldest first.
    pub fn records(&self) -> Vec<QueryLogRecord> {
        let inner = self.inner.lock().expect("query log poisoned");
        inner.ring.iter().cloned().collect()
    }

    /// The most recent sampled record.
    pub fn last(&self) -> Option<QueryLogRecord> {
        let inner = self.inner.lock().expect("query log poisoned");
        inner.ring.back().cloned()
    }

    /// Exact aggregate for one fingerprint.
    pub fn stats(&self, fingerprint: u64) -> Option<FingerprintStats> {
        let inner = self.inner.lock().expect("query log poisoned");
        inner.stats.get(&fingerprint).cloned()
    }

    /// Sorted `(fingerprint, count)` pairs over the whole workload — the
    /// order-independent digest compared across same-seed runs in E18.
    pub fn fingerprints(&self) -> Vec<(u64, u64)> {
        let inner = self.inner.lock().expect("query log poisoned");
        inner.stats.values().map(|s| (s.fingerprint, s.count)).collect()
    }

    /// Top-`k` fingerprints by `key`, descending, fingerprint tie-break.
    pub fn top_k(&self, k: usize, key: WorkloadKey) -> Vec<FingerprintStats> {
        let inner = self.inner.lock().expect("query log poisoned");
        let mut all: Vec<FingerprintStats> = inner.stats.values().cloned().collect();
        drop(inner);
        all.sort_by(|a, b| {
            let (wa, wb) = match key {
                WorkloadKey::Count => (a.count as f64, b.count as f64),
                WorkloadKey::BytesShipped => (a.total_bytes as f64, b.total_bytes as f64),
                WorkloadKey::SimMs => (a.total_sim_ms, b.total_sim_ms),
                WorkloadKey::Errors => (a.errors as f64, b.errors as f64),
            };
            wb.partial_cmp(&wa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        all.truncate(k);
        all
    }

    /// Render the top-`k` by `key` with the fingerprint, the counters the
    /// ranking used, *and* the normalized plan text each fingerprint
    /// hashes — so a workload ranking (or an advisor recommendation built
    /// from one) is debuggable on its own, without grepping traces for
    /// the plan a fingerprint stands for.
    pub fn top_k_report(&self, k: usize, key: WorkloadKey) -> String {
        let mut out = String::new();
        for stats in self.top_k(k, key) {
            out.push_str(&format!(
                "fp={:016x} count={} bytes={} sim_ms={:.1} errors={}\n  sql: {}\n  plan: {}\n",
                stats.fingerprint,
                stats.count,
                stats.total_bytes,
                stats.total_sim_ms,
                stats.errors,
                if stats.sql.is_empty() { "<unknown>" } else { &stats.sql },
                stats.plan.trim_end().replace('\n', "\n        "),
            ));
        }
        out
    }

    /// Drop all records and aggregates.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("query log poisoned");
        *inner = LogInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(fp: &str, bytes: u64, sim_ms: f64) -> QueryLogRecord {
        QueryLogRecord {
            fingerprint: fingerprint64(fp),
            plan: fp.to_string(),
            sql: format!("SELECT {fp}"),
            session: None,
            role: "analyst".into(),
            priority: "normal".into(),
            start_sim_ms: 0.0,
            sim_ms,
            wall_us: 10,
            rows: 1,
            bytes_shipped: bytes,
            per_source_bytes: vec![("crm".into(), bytes)],
            operators: Vec::new(),
            deadline_budget_ms: None,
            deadline_spent_ms: None,
            flags: StatementFlags::default(),
            error: None,
            trace_id: None,
        }
    }

    #[test]
    fn fingerprint_is_stable_fnv() {
        assert_eq!(fingerprint64(""), FNV_OFFSET);
        assert_ne!(fingerprint64("a"), fingerprint64("b"));
        assert_eq!(fingerprint64("plan"), fingerprint64("plan"));
    }

    #[test]
    fn aggregates_count_everything_ring_is_bounded() {
        let log = QueryLog::new(4, 1);
        for i in 0..10 {
            log.record(record("q1", 100, i as f64));
        }
        assert_eq!(log.seen(), 10);
        assert_eq!(log.records().len(), 4, "ring bounded");
        let stats = log.stats(fingerprint64("q1")).unwrap();
        assert_eq!(stats.count, 10);
        assert_eq!(stats.total_bytes, 1000);
        assert_eq!(stats.max_sim_ms, 9.0);
    }

    #[test]
    fn sampling_keeps_every_nth_plus_noteworthy() {
        let log = QueryLog::new(64, 4);
        for _ in 0..8 {
            log.record(record("q1", 1, 1.0));
        }
        // seq 1 and 5 sample in.
        assert_eq!(log.records().len(), 2);
        let mut shed = record("q1", 1, 1.0);
        shed.flags.shed = true;
        log.record(shed);
        assert_eq!(log.records().len(), 3, "noteworthy bypasses sampling");
        assert_eq!(log.stats(fingerprint64("q1")).unwrap().count, 9);
        assert_eq!(log.stats(fingerprint64("q1")).unwrap().shed, 1);
    }

    #[test]
    fn top_k_orders_by_requested_key() {
        let log = QueryLog::new(16, 1);
        for _ in 0..3 {
            log.record(record("cheap", 10, 1.0));
        }
        log.record(record("heavy", 9000, 50.0));
        let by_count = log.top_k(2, WorkloadKey::Count);
        assert_eq!(by_count[0].plan, "cheap");
        let by_bytes = log.top_k(2, WorkloadKey::BytesShipped);
        assert_eq!(by_bytes[0].plan, "heavy");
        let by_sim = log.top_k(1, WorkloadKey::SimMs);
        assert_eq!(by_sim[0].plan, "heavy");
        let report = log.top_k_report(2, WorkloadKey::BytesShipped);
        assert!(report.contains("sql: SELECT heavy"), "{report}");
        assert!(report.contains("plan: heavy"), "{report}");
        assert!(report.contains("bytes=9000"), "{report}");
    }

    #[test]
    fn fingerprints_digest_is_sorted_and_exact() {
        let log = QueryLog::new(2, 8); // tiny ring, aggressive sampling
        for _ in 0..5 {
            log.record(record("a", 1, 1.0));
        }
        for _ in 0..3 {
            log.record(record("b", 1, 1.0));
        }
        let digest = log.fingerprints();
        assert_eq!(digest.len(), 2);
        // BTreeMap ordering: sorted by fingerprint.
        assert!(digest[0].0 < digest[1].0);
        let counts: u64 = digest.iter().map(|(_, c)| c).sum();
        assert_eq!(counts, 8, "aggregates unaffected by sampling/eviction");
    }

    #[test]
    fn record_serializes_via_shim() {
        let mut r = record("q", 5, 2.0);
        r.flags.hedged = true;
        r.error = Some("deadline".into());
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"fingerprint\""), "{json}");
        assert!(json.contains("\"hedged\":true"), "{json}");
        assert!(json.contains("\"deadline\""), "{json}");
    }

    #[test]
    fn flags_render_compactly() {
        let mut f = StatementFlags::default();
        assert_eq!(f.render(), "");
        assert!(!f.noteworthy());
        f.hedged = true;
        f.degraded = true;
        assert_eq!(f.render(), "hedged|degraded");
        assert!(f.noteworthy());
    }
}
