//! Mergeable quantile sketches (GK/CKMS-style) for latency percentiles.
//!
//! Fixed-bucket histograms answer "how many observations fell under 50 ms"
//! but cannot answer "what is p99" with better resolution than the bucket
//! grid. A [`QuantileSketch`] keeps a compressed list of weighted samples
//! `(value, g, delta)` in the Greenwald–Khanna style: while the stream is
//! small every observation is retained exactly (`g = 1`, `delta = 0`), and
//! past [`QuantileSketch::compress_threshold`] samples the list is
//! deterministically compacted so any quantile query stays within
//! `2 * epsilon * n` ranks of exact.
//!
//! Because the engine's latencies are *simulated* milliseconds on the
//! shared virtual clock, the observed multiset is identical across
//! same-seed runs — and below the compression threshold a quantile query
//! depends only on that multiset (the samples are kept sorted), so sketch
//! readouts are bit-identical regardless of thread interleaving. Sketches
//! [`merge`](QuantileSketch::merge) losslessly in the exact regime, which
//! is what lets per-session or per-trial sketches roll up into one
//! workload-wide percentile view.

use serde::Serialize;

/// Default rank-error bound: p99 of 10k observations is within ±10 ranks.
pub const DEFAULT_SKETCH_EPSILON: f64 = 0.001;

/// Default number of retained samples before GK compression kicks in.
/// Below this the sketch is exact (every observation kept, sorted).
pub const DEFAULT_COMPRESS_THRESHOLD: usize = 4096;

/// One weighted GK tuple: `value` stands for `g` observations whose exact
/// ranks are only known to within `delta` (0 while the sketch is exact).
/// The invariant `g + delta <= 2 * epsilon * n` bounds every query's rank
/// error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SketchSample {
    /// The observed value (simulated ms by convention).
    pub value: f64,
    /// Number of observations this tuple stands for.
    pub g: u64,
    /// Rank uncertainty (GK's Δ).
    pub delta: u64,
}

/// A deterministic, mergeable quantile sketch over `f64` observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileSketch {
    samples: Vec<SketchSample>,
    count: u64,
    sum: f64,
    epsilon: f64,
    compress_threshold: usize,
    /// True once any sample carries rank uncertainty — quantile queries
    /// then apply the GK margin; until then they are exact nearest-rank.
    compressed: bool,
}

impl QuantileSketch {
    /// A new sketch with the default error bound.
    pub fn new() -> Self {
        QuantileSketch::with_epsilon(DEFAULT_SKETCH_EPSILON)
    }

    /// A new sketch with an explicit rank-error bound `epsilon`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        QuantileSketch {
            samples: Vec::new(),
            count: 0,
            sum: 0.0,
            epsilon: epsilon.max(1e-6),
            compress_threshold: DEFAULT_COMPRESS_THRESHOLD,
            compressed: false,
        }
    }

    /// Override the exact-regime size (tests exercise compression with a
    /// small threshold).
    pub fn with_compress_threshold(mut self, threshold: usize) -> Self {
        self.compress_threshold = threshold.max(8);
        self
    }

    /// The sample count before compression engages.
    pub fn compress_threshold(&self) -> usize {
        self.compress_threshold
    }

    /// Total observations recorded (not retained samples).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Retained weighted samples (sorted by value).
    pub fn samples(&self) -> &[SketchSample] {
        &self.samples
    }

    /// Whether the sketch is still in the exact regime — no compression
    /// has happened, so [`Self::quantile`] is exact nearest-rank and
    /// bit-identical across insertion orders of the same multiset.
    pub fn is_exact(&self) -> bool {
        !self.compressed
    }

    /// Record one observation. NaN is ignored (it has no rank).
    pub fn insert(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.count += 1;
        self.sum += value;
        // Stable insertion point: after any equal values, so ties keep
        // first-observed order and the list stays sorted. The new tuple's
        // delta is its successor's rank uncertainty (CKMS): a fresh
        // observation's true rank is only known to within the span of the
        // run it lands next to. While the sketch is exact every successor
        // has g = 1, delta = 0, so fresh tuples stay exact too.
        let pos = self.samples.partition_point(|s| s.value <= value);
        let delta = if pos == 0 || pos == self.samples.len() {
            0 // new minimum or maximum: rank exactly known
        } else {
            let succ = &self.samples[pos];
            (succ.g + succ.delta).saturating_sub(1)
        };
        self.samples.insert(pos, SketchSample { value, g: 1, delta });
        if self.samples.len() > self.compress_threshold {
            self.compress();
        }
    }

    /// GK/CKMS compaction: fold a tuple into its right neighbour when the
    /// combined rank span `g_i + g_{i+1} + delta_{i+1}` fits the
    /// `2 * epsilon * n` error budget. The survivor keeps the right
    /// neighbour's value and delta, so every surviving boundary's rank
    /// claim is unchanged — this is what keeps errors from compounding
    /// across repeated compressions. Deterministic given the current
    /// sample list; the minimum and maximum tuples are never merged away.
    fn compress(&mut self) {
        if self.samples.len() < 3 {
            return;
        }
        let budget = ((2.0 * self.epsilon * self.count as f64).floor() as u64).max(2);
        // Walk right-to-left so a run can absorb several left neighbours.
        let mut rev: Vec<SketchSample> = Vec::with_capacity(self.samples.len());
        rev.push(self.samples[self.samples.len() - 1]);
        for s in self.samples[1..self.samples.len() - 1].iter().rev() {
            let succ = rev.last_mut().expect("non-empty");
            if s.g + succ.g + succ.delta <= budget {
                succ.g += s.g;
            } else {
                rev.push(*s);
            }
        }
        rev.push(self.samples[0]);
        rev.reverse();
        if rev.len() < self.samples.len() {
            self.compressed = true;
        }
        self.samples = rev;
    }

    /// The value at quantile `q` in `[0, 1]`, or `None` when empty.
    /// Exact (nearest-rank) while uncompressed; within `2 * epsilon * n`
    /// ranks afterwards (every tuple's rank is known to within
    /// `g + delta <= 2 * epsilon * n`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || self.samples.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let margin = if self.compressed {
            (self.epsilon * self.count as f64).floor() as u64
        } else {
            0
        };
        let mut cum = 0u64;
        let mut prev = self.samples[0].value;
        for s in &self.samples {
            if cum + s.g + s.delta > rank + margin {
                return Some(prev);
            }
            cum += s.g;
            prev = s.value;
        }
        Some(prev)
    }

    /// Minimum observed value.
    pub fn min(&self) -> Option<f64> {
        self.samples.first().map(|s| s.value)
    }

    /// Maximum observed value.
    pub fn max(&self) -> Option<f64> {
        self.samples.last().map(|s| s.value)
    }

    /// Fold `other` into `self`. In the exact regime this is a lossless
    /// sorted-multiset union; compressed inputs keep their per-sample
    /// uncertainty and the result is recompressed against the combined
    /// count.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.compressed |= other.compressed;
        let mut merged = Vec::with_capacity(self.samples.len() + other.samples.len());
        let (mut a, mut b) = (self.samples.iter().peekable(), other.samples.iter().peekable());
        while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
            if x.value <= y.value {
                merged.push(**x);
                a.next();
            } else {
                merged.push(**y);
                b.next();
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.samples = merged;
        if self.samples.len() > self.compress_threshold {
            self.compress();
        }
    }

    /// Owned, serializable summary (count, sum, and canonical percentiles).
    pub fn snapshot(&self) -> SketchSnapshot {
        SketchSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            p50: self.quantile(0.50).unwrap_or(0.0),
            p90: self.quantile(0.90).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            retained: self.samples.len() as u64,
        }
    }
}

/// Owned view of a sketch at one instant: canonical percentiles for
/// dashboards and the bench harness.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct SketchSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Weighted samples currently retained.
    pub retained: u64,
}

impl SketchSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn exact_regime_matches_nearest_rank() {
        let mut sk = QuantileSketch::new();
        let mut values: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        for v in &values {
            sk.insert(*v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                sk.quantile(q).unwrap(),
                exact_percentile(&values, q),
                "q={q}"
            );
        }
        assert_eq!(sk.count(), 1000);
        assert_eq!(sk.min(), Some(0.0));
        assert_eq!(sk.max(), Some(999.0));
    }

    #[test]
    fn quantiles_are_insertion_order_independent() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let values: Vec<f64> = (0..500).map(|i| ((i * 37) % 250) as f64 / 2.0).collect();
        for v in &values {
            a.insert(*v);
        }
        for v in values.iter().rev() {
            b.insert(*v);
        }
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            assert_eq!(a.quantile(q), b.quantile(q), "q={q}");
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn merge_is_lossless_in_the_exact_regime() {
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        let mut whole = QuantileSketch::new();
        for i in 0..400 {
            let v = ((i * 13) % 97) as f64;
            whole.insert(v);
            if i % 2 == 0 {
                left.insert(v);
            } else {
                right.insert(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(left.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn compression_bounds_memory_and_stays_close() {
        // Memory steady-state is ~2n / (2 * eps * n) = 1/eps runs; pick
        // eps so that sits well under the compress threshold.
        let eps = 0.05;
        let mut sk = QuantileSketch::with_epsilon(eps).with_compress_threshold(64);
        let n = 10_000;
        for i in 0..n {
            sk.insert(((i * 7919) % n) as f64);
        }
        assert!(
            sk.samples().len() <= 65,
            "compression must bound retained samples, got {}",
            sk.samples().len()
        );
        assert!(!sk.is_exact());
        assert_eq!(sk.count(), n as u64);
        let total_g: u64 = sk.samples().iter().map(|s| s.g).sum();
        assert_eq!(total_g, n as u64, "weights must cover every observation");
        // Rank error is bounded by 2 * eps * n.
        let p50 = sk.quantile(0.5).unwrap();
        assert!(
            (p50 - n as f64 / 2.0).abs() <= 2.0 * eps * n as f64,
            "p50={p50}"
        );
        let p99 = sk.quantile(0.99).unwrap();
        assert!(p99 >= (0.99 - 2.0 * eps) * n as f64, "p99={p99}");
        assert_eq!(sk.min(), Some(0.0));
        assert_eq!(sk.max(), Some((n - 1) as f64));
    }

    #[test]
    fn empty_and_degenerate_sketches() {
        let sk = QuantileSketch::new();
        assert_eq!(sk.quantile(0.5), None);
        assert_eq!(sk.count(), 0);
        assert_eq!(sk.snapshot().p99, 0.0);
        let mut one = QuantileSketch::new();
        one.insert(42.0);
        one.insert(f64::NAN); // ignored
        assert_eq!(one.count(), 1);
        assert_eq!(one.quantile(0.0), Some(42.0));
        assert_eq!(one.quantile(1.0), Some(42.0));
        assert!((one.mean() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_serializes() {
        let mut sk = QuantileSketch::new();
        sk.insert(1.0);
        sk.insert(2.0);
        let json = serde::Serialize::to_json(&sk.snapshot()).to_string();
        assert!(json.contains("\"count\":2"), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
    }
}
