//! SLO burn-rate monitoring on the virtual clock.
//!
//! An [`SloObjective`] states, per priority tier, a latency target ("99%
//! of `high` statements finish within 50 simulated ms") and an
//! availability target ("99.9% succeed"). The [`SloMonitor`] ingests one
//! sample per statement and evaluates **multi-window burn rates** the way
//! production alerting does (Google SRE workbook style): for each
//! configured window, the observed bad-event rate is divided by the error
//! budget (`1 - objective`); a burn rate of 1.0 means the budget is being
//! consumed exactly at the sustainable pace, and a short-window burn above
//! its threshold *and* a long-window burn above its threshold together
//! mean the budget is burning fast enough to page. Everything runs on
//! simulated time, so same-seed runs produce bit-identical SLO readouts.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use serde::Serialize;

/// One evaluation window with its paging threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SloWindow {
    /// Window length in simulated milliseconds.
    pub window_ms: f64,
    /// Burn-rate threshold above which this window is "hot".
    pub burn_threshold: f64,
}

/// Per-priority latency and availability objectives.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloObjective {
    /// Priority tier this objective applies to (`low`/`normal`/`high`).
    pub priority: String,
    /// A statement is latency-good when it finishes within this budget.
    pub latency_target_ms: f64,
    /// Fraction of statements that must be latency-good (e.g. 0.99).
    pub latency_objective: f64,
    /// Fraction of statements that must succeed (e.g. 0.999).
    pub availability_objective: f64,
    /// Evaluation windows, fast to slow.
    pub windows: Vec<SloWindow>,
}

impl SloObjective {
    /// A sensible default: fast window (5 s sim) pages at burn 14.4, slow
    /// window (60 s sim) pages at burn 6 — the classic 2-window pairing
    /// scaled down to experiment timelines.
    pub fn new(priority: impl Into<String>, latency_target_ms: f64) -> Self {
        SloObjective {
            priority: priority.into(),
            latency_target_ms,
            latency_objective: 0.99,
            availability_objective: 0.999,
            windows: vec![
                SloWindow {
                    window_ms: 5_000.0,
                    burn_threshold: 14.4,
                },
                SloWindow {
                    window_ms: 60_000.0,
                    burn_threshold: 6.0,
                },
            ],
        }
    }

    /// Override the latency objective fraction.
    pub fn with_latency_objective(mut self, objective: f64) -> Self {
        self.latency_objective = objective.clamp(0.0, 1.0 - 1e-9);
        self
    }

    /// Override the availability objective fraction.
    pub fn with_availability_objective(mut self, objective: f64) -> Self {
        self.availability_objective = objective.clamp(0.0, 1.0 - 1e-9);
        self
    }

    /// Replace the evaluation windows.
    pub fn with_windows(mut self, windows: Vec<SloWindow>) -> Self {
        if !windows.is_empty() {
            self.windows = windows;
        }
        self
    }
}

/// One statement's contribution to the SLO streams.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SloSample {
    end_sim_ms: f64,
    latency_ms: f64,
    ok: bool,
}

/// Burn-rate readout for one window of one objective stream.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WindowBurn {
    /// Window length in simulated milliseconds.
    pub window_ms: f64,
    /// Samples that fell inside the window.
    pub samples: u64,
    /// Observed bad-event fraction inside the window.
    pub bad_fraction: f64,
    /// Bad fraction divided by the error budget (1 = sustainable pace).
    pub burn_rate: f64,
    /// Whether the burn rate exceeds this window's threshold.
    pub hot: bool,
}

/// Health verdict for one priority tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SloState {
    /// No window is burning above threshold.
    Healthy,
    /// Some but not all windows are hot (budget burning, not paging yet).
    AtRisk,
    /// Every configured window is hot — the multi-window page condition.
    Breached,
}

impl SloState {
    /// Lowercase label for metrics and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            SloState::Healthy => "healthy",
            SloState::AtRisk => "at_risk",
            SloState::Breached => "breached",
        }
    }
}

/// Full readout for one priority tier at one evaluation instant.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloStatus {
    /// Priority tier.
    pub priority: String,
    /// Statements observed on this tier overall.
    pub total: u64,
    /// Latency burn per window, fast to slow.
    pub latency_burn: Vec<WindowBurn>,
    /// Availability burn per window, fast to slow.
    pub availability_burn: Vec<WindowBurn>,
    /// Verdict over the latency stream.
    pub latency_state: SloState,
    /// Verdict over the availability stream.
    pub availability_state: SloState,
}

impl SloStatus {
    /// Worst of the two stream verdicts.
    pub fn state(&self) -> SloState {
        match (self.latency_state, self.availability_state) {
            (SloState::Breached, _) | (_, SloState::Breached) => SloState::Breached,
            (SloState::AtRisk, _) | (_, SloState::AtRisk) => SloState::AtRisk,
            _ => SloState::Healthy,
        }
    }
}

#[derive(Debug, Default)]
struct MonitorInner {
    objectives: BTreeMap<String, SloObjective>,
    samples: BTreeMap<String, VecDeque<SloSample>>,
}

/// Ingests per-statement samples and evaluates burn rates on demand.
/// Cloning shares the monitor.
#[derive(Debug, Clone, Default)]
pub struct SloMonitor {
    inner: Arc<Mutex<MonitorInner>>,
}

impl SloMonitor {
    /// An empty monitor (no objectives registered).
    pub fn new() -> Self {
        SloMonitor::default()
    }

    /// Register (or replace) the objective for a priority tier.
    pub fn set_objective(&self, objective: SloObjective) {
        let mut inner = self.inner.lock().expect("slo monitor poisoned");
        inner.objectives.insert(objective.priority.clone(), objective);
    }

    /// Registered objectives, sorted by priority label.
    pub fn objectives(&self) -> Vec<SloObjective> {
        let inner = self.inner.lock().expect("slo monitor poisoned");
        inner.objectives.values().cloned().collect()
    }

    /// Record one statement's outcome for its priority tier. Samples for
    /// tiers without an objective are dropped.
    pub fn record(&self, priority: &str, end_sim_ms: f64, latency_ms: f64, ok: bool) {
        let mut inner = self.inner.lock().expect("slo monitor poisoned");
        let Some(obj) = inner.objectives.get(priority) else {
            return;
        };
        let horizon = obj
            .windows
            .iter()
            .map(|w| w.window_ms)
            .fold(0.0f64, f64::max);
        let queue = inner.samples.entry(priority.to_string()).or_default();
        queue.push_back(SloSample {
            end_sim_ms,
            latency_ms,
            ok,
        });
        // Evict samples that have aged out of every window.
        while let Some(front) = queue.front() {
            if front.end_sim_ms < end_sim_ms - horizon {
                queue.pop_front();
            } else {
                break;
            }
        }
    }

    fn burn(
        windows: &[SloWindow],
        samples: &VecDeque<SloSample>,
        now_ms: f64,
        objective: f64,
        is_bad: impl Fn(&SloSample) -> bool,
    ) -> Vec<WindowBurn> {
        let budget = (1.0 - objective).max(1e-12);
        windows
            .iter()
            .map(|w| {
                let (mut total, mut bad) = (0u64, 0u64);
                for s in samples.iter().rev() {
                    if s.end_sim_ms < now_ms - w.window_ms {
                        break;
                    }
                    total += 1;
                    if is_bad(s) {
                        bad += 1;
                    }
                }
                let bad_fraction = if total == 0 {
                    0.0
                } else {
                    bad as f64 / total as f64
                };
                let burn_rate = bad_fraction / budget;
                WindowBurn {
                    window_ms: w.window_ms,
                    samples: total,
                    bad_fraction,
                    burn_rate,
                    hot: burn_rate > w.burn_threshold,
                }
            })
            .collect()
    }

    fn verdict(burns: &[WindowBurn]) -> SloState {
        let hot = burns.iter().filter(|b| b.hot).count();
        if hot == 0 {
            SloState::Healthy
        } else if hot == burns.len() {
            SloState::Breached
        } else {
            SloState::AtRisk
        }
    }

    /// Evaluate every registered objective at virtual time `now_ms`,
    /// sorted by priority label.
    pub fn evaluate(&self, now_ms: f64) -> Vec<SloStatus> {
        let inner = self.inner.lock().expect("slo monitor poisoned");
        static EMPTY: VecDeque<SloSample> = VecDeque::new();
        inner
            .objectives
            .values()
            .map(|obj| {
                let samples = inner.samples.get(&obj.priority).unwrap_or(&EMPTY);
                let latency_burn = SloMonitor::burn(
                    &obj.windows,
                    samples,
                    now_ms,
                    obj.latency_objective,
                    |s| s.latency_ms > obj.latency_target_ms,
                );
                let availability_burn = SloMonitor::burn(
                    &obj.windows,
                    samples,
                    now_ms,
                    obj.availability_objective,
                    |s| !s.ok,
                );
                SloStatus {
                    priority: obj.priority.clone(),
                    total: samples.len() as u64,
                    latency_state: SloMonitor::verdict(&latency_burn),
                    availability_state: SloMonitor::verdict(&availability_burn),
                    latency_burn,
                    availability_burn,
                }
            })
            .collect()
    }

    /// Drop all samples (objectives stay registered).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("slo monitor poisoned");
        inner.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> SloMonitor {
        let m = SloMonitor::new();
        m.set_objective(
            SloObjective::new("high", 50.0)
                .with_latency_objective(0.9)
                .with_availability_objective(0.9)
                .with_windows(vec![
                    SloWindow {
                        window_ms: 100.0,
                        burn_threshold: 2.0,
                    },
                    SloWindow {
                        window_ms: 1000.0,
                        burn_threshold: 1.5,
                    },
                ]),
        );
        m
    }

    #[test]
    fn healthy_when_all_good() {
        let m = monitor();
        for i in 0..20 {
            m.record("high", i as f64 * 10.0, 5.0, true);
        }
        let status = &m.evaluate(200.0)[0];
        assert_eq!(status.state(), SloState::Healthy);
        assert_eq!(status.latency_burn.len(), 2);
        assert_eq!(status.latency_burn[0].burn_rate, 0.0);
    }

    #[test]
    fn breached_when_every_window_burns() {
        let m = monitor();
        // All statements slow: bad fraction 1.0, budget 0.1 -> burn 10.
        for i in 0..20 {
            m.record("high", i as f64 * 10.0, 500.0, true);
        }
        let status = &m.evaluate(200.0)[0];
        assert_eq!(status.latency_state, SloState::Breached);
        assert_eq!(status.availability_state, SloState::Healthy);
        assert_eq!(status.state(), SloState::Breached);
        assert!(status.latency_burn.iter().all(|b| b.hot));
        assert!((status.latency_burn[0].burn_rate - 10.0).abs() < 1e-9);
    }

    #[test]
    fn at_risk_when_only_short_window_burns() {
        let m = monitor();
        // 100 good samples spread over the long window...
        for i in 0..100 {
            m.record("high", i as f64 * 9.0, 5.0, true);
        }
        // ...then a burst of failures inside the last 100ms only.
        for i in 0..5 {
            m.record("high", 900.0 + i as f64 * 10.0, 5.0, false);
        }
        let status = &m.evaluate(950.0)[0];
        assert!(status.availability_burn[0].hot, "short window hot");
        assert!(!status.availability_burn[1].hot, "long window absorbs burst");
        assert_eq!(status.availability_state, SloState::AtRisk);
    }

    #[test]
    fn windows_expire_old_samples() {
        let m = monitor();
        for i in 0..10 {
            m.record("high", i as f64, 500.0, false); // terrible start
        }
        for i in 0..50 {
            m.record("high", 2000.0 + i as f64 * 10.0, 5.0, true);
        }
        let status = &m.evaluate(2500.0)[0];
        assert_eq!(status.state(), SloState::Healthy, "old badness aged out");
    }

    #[test]
    fn unregistered_priority_is_ignored() {
        let m = monitor();
        m.record("low", 0.0, 1000.0, false);
        let statuses = m.evaluate(100.0);
        assert_eq!(statuses.len(), 1);
        assert_eq!(statuses[0].priority, "high");
        assert_eq!(statuses[0].total, 0);
    }

    #[test]
    fn deterministic_readout_same_samples() {
        let run = || {
            let m = monitor();
            for i in 0..30 {
                m.record("high", i as f64 * 7.0, if i % 3 == 0 { 80.0 } else { 10.0 }, i % 7 != 0);
            }
            serde_json::to_string(&m.evaluate(210.0)).unwrap()
        };
        assert_eq!(run(), run());
    }
}
