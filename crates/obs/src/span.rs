//! Query tracing: nested spans on the simulated clock.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s; guards opened while another
//! guard is alive become children of that span, so the lexical structure of
//! the instrumented code becomes the trace tree. Each span records both
//! simulated time (from the shared [`SimClock`], the currency of every
//! experiment) and wall time (what the instrumentation overhead experiment
//! E14 measures). [`Tracer::finish`] yields the immutable [`QueryTrace`].

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use eii_data::SimClock;

/// One finished span: a named phase with timings, key=value annotations,
/// and child spans.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Phase name (`parse`, `plan`, `execute`, `op:HashJoin`, ...).
    pub name: String,
    /// Simulated time when the span opened, ms.
    pub start_sim_ms: i64,
    /// Simulated time when the span closed, ms.
    pub end_sim_ms: i64,
    /// Real elapsed time inside the span.
    pub wall: Duration,
    /// Free-form `key=value` annotations attached while the span was open.
    pub annotations: Vec<(String, String)>,
    /// Child spans, in completion order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Simulated milliseconds elapsed inside this span.
    pub fn sim_ms(&self) -> i64 {
        self.end_sim_ms - self.start_sim_ms
    }

    /// Depth-first search for the first span with this name (including
    /// `self`).
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total number of spans in this subtree (including `self`).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanRecord::span_count).sum::<usize>()
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let _ = write!(
            out,
            "{indent}{} sim={}ms wall={:.1?}",
            self.name,
            self.sim_ms(),
            self.wall
        );
        for (k, v) in &self.annotations {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

/// A span that is still open.
struct OpenSpan {
    name: String,
    start_sim_ms: i64,
    start_wall: Instant,
    annotations: Vec<(String, String)>,
    children: Vec<SpanRecord>,
}

struct TracerInner {
    stack: Vec<OpenSpan>,
    roots: Vec<SpanRecord>,
}

/// Collects a tree of spans for one query. Cloning shares the collector.
#[derive(Clone)]
pub struct Tracer {
    clock: SimClock,
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    /// A new tracer telling simulated time through `clock`.
    pub fn new(clock: SimClock) -> Self {
        Tracer {
            clock,
            inner: Arc::new(Mutex::new(TracerInner {
                stack: Vec::new(),
                roots: Vec::new(),
            })),
        }
    }

    /// Open a span. The span closes (and attaches to its parent) when the
    /// returned guard drops; guards must drop in LIFO order, which lexical
    /// scoping guarantees.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        self.inner.lock().expect("tracer lock").stack.push(OpenSpan {
            name: name.into(),
            start_sim_ms: self.clock.now_ms(),
            start_wall: Instant::now(),
            annotations: Vec::new(),
            children: Vec::new(),
        });
        SpanGuard {
            tracer: self.clone(),
        }
    }

    /// Annotate the innermost open span with a `key=value` pair.
    pub fn annotate(&self, key: impl Into<String>, value: impl ToString) {
        let mut inner = self.inner.lock().expect("tracer lock");
        if let Some(top) = inner.stack.last_mut() {
            top.annotations.push((key.into(), value.to_string()));
        }
    }

    /// Attach an already-built span subtree to the innermost open span (or
    /// to the root list). This is how the executor's per-operator profile —
    /// collected across worker threads — joins the single-threaded phase
    /// trace.
    pub fn attach(&self, span: SpanRecord) {
        let mut inner = self.inner.lock().expect("tracer lock");
        match inner.stack.last_mut() {
            Some(top) => top.children.push(span),
            None => inner.roots.push(span),
        }
    }

    fn close_top(&self) {
        let mut inner = self.inner.lock().expect("tracer lock");
        let Some(open) = inner.stack.pop() else {
            return;
        };
        let record = SpanRecord {
            name: open.name,
            start_sim_ms: open.start_sim_ms,
            end_sim_ms: self.clock.now_ms(),
            wall: open.start_wall.elapsed(),
            annotations: open.annotations,
            children: open.children,
        };
        match inner.stack.last_mut() {
            Some(parent) => parent.children.push(record),
            None => inner.roots.push(record),
        }
    }

    /// Close any still-open spans and return the finished trace.
    pub fn finish(self) -> QueryTrace {
        loop {
            let open = !self.inner.lock().expect("tracer lock").stack.is_empty();
            if !open {
                break;
            }
            self.close_top();
        }
        let mut inner = self.inner.lock().expect("tracer lock");
        QueryTrace {
            spans: std::mem::take(&mut inner.roots),
        }
    }
}

/// RAII handle for one open span; closes the span on drop.
pub struct SpanGuard {
    tracer: Tracer,
}

impl SpanGuard {
    /// Annotate this span with a `key=value` pair (it must still be the
    /// innermost open span).
    pub fn annotate(&self, key: impl Into<String>, value: impl ToString) {
        self.tracer.annotate(key, value);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.tracer.close_top();
    }
}

/// The finished trace of one query: a forest of phase spans (normally a
/// single root covering the whole statement).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryTrace {
    /// Root spans in completion order.
    pub spans: Vec<SpanRecord>,
}

impl QueryTrace {
    /// Depth-first search across all roots for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Total number of spans in the trace.
    pub fn span_count(&self) -> usize {
        self.spans.iter().map(SpanRecord::span_count).sum()
    }

    /// Indented human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            s.render_into(0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_lexically_and_time_the_sim_clock() {
        let clock = SimClock::new();
        let tracer = Tracer::new(clock.clone());
        {
            let _q = tracer.span("query");
            {
                let p = tracer.span("parse");
                p.annotate("tokens", 42);
                clock.advance_ms(3);
            }
            {
                let _e = tracer.span("execute");
                clock.advance_ms(7);
            }
        }
        let trace = tracer.finish();
        assert_eq!(trace.spans.len(), 1);
        let root = &trace.spans[0];
        assert_eq!(root.name, "query");
        assert_eq!(root.sim_ms(), 10);
        assert_eq!(root.children.len(), 2);
        assert_eq!(trace.find("parse").unwrap().sim_ms(), 3);
        assert_eq!(trace.find("execute").unwrap().sim_ms(), 7);
        assert_eq!(
            trace.find("parse").unwrap().annotations,
            vec![("tokens".to_string(), "42".to_string())]
        );
        assert_eq!(trace.span_count(), 3);
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let tracer = Tracer::new(SimClock::new());
        let guard = tracer.span("left-open");
        std::mem::forget(guard); // simulate an early-return path
        let trace = tracer.clone().finish();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "left-open");
    }

    #[test]
    fn attach_grafts_foreign_subtrees() {
        let clock = SimClock::new();
        let tracer = Tracer::new(clock.clone());
        {
            let _e = tracer.span("execute");
            tracer.attach(SpanRecord {
                name: "op:HashJoin".into(),
                start_sim_ms: 0,
                end_sim_ms: 5,
                wall: Duration::from_micros(10),
                annotations: vec![("rows".into(), "7".into())],
                children: vec![],
            });
        }
        let trace = tracer.finish();
        assert_eq!(trace.find("op:HashJoin").unwrap().sim_ms(), 5);
        assert!(trace.render().contains("op:HashJoin"));
        assert!(trace.render().contains("rows=7"));
    }
}
