//! Sampled trace store with tail-sampling and Chrome trace-event export,
//! plus the resilience telemetry event log.
//!
//! Replaces the single `last_trace()` slot: the store retains the last N
//! [`StoredTrace`]s with deterministic per-fingerprint sampling (every
//! `sample_every`-th statement of each fingerprint keeps its trace) and
//! **tail-sampling** — statements that errored, hit a deadline, were shed,
//! degraded, cancelled, or fired a hedge always keep their trace, because
//! those are precisely the traces someone will ask for. Each stored trace
//! has a process-unique `trace_id`; resilience events (hedge fired, breaker
//! transitions, shed decisions) are stamped with the owning trace's ID in
//! the [`EventLog`] so an incident review can walk from a `breaker.to_open`
//! event straight to the trace of the statement that tripped it.
//!
//! Any stored trace exports as Chrome trace-event JSON
//! ([`chrome_trace_json`]) loadable in `chrome://tracing` or Perfetto:
//! spans become `"ph": "X"` complete events on the *simulated* timeline
//! (ts/dur in microseconds of virtual time), annotations become `args`.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Json, Serialize};

use crate::querylog::StatementFlags;
use crate::span::{QueryTrace, SpanRecord};

/// One retained trace plus the statement context needed to find it again.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTrace {
    /// Process-unique trace ID (also stamped into resilience events).
    pub trace_id: u64,
    /// Normalized-plan fingerprint of the statement.
    pub fingerprint: u64,
    /// Session label, when the statement ran through a labelled session.
    pub session: Option<String>,
    /// Virtual-clock timestamp when the statement started.
    pub start_sim_ms: f64,
    /// Outcome flags (drives tail-sampling).
    pub flags: StatementFlags,
    /// Error kind when the statement failed.
    pub error: Option<String>,
    /// The span tree, shared with the statement's other observers — an
    /// `Arc` so retaining every trace costs a refcount bump per statement,
    /// not a deep span-tree clone (E18's overhead gate).
    pub trace: Arc<QueryTrace>,
}

#[derive(Debug, Default)]
struct StoreInner {
    ring: VecDeque<StoredTrace>,
    seq: BTreeMap<u64, u64>,
}

/// Bounded, sampled, thread-safe trace retention. Cloning shares the ring.
#[derive(Debug, Clone)]
pub struct TraceStore {
    inner: Arc<Mutex<StoreInner>>,
    next_id: Arc<AtomicU64>,
    capacity: usize,
    sample_every: u64,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new(64, 16)
    }
}

impl TraceStore {
    /// A store retaining at most `capacity` traces, sampling every
    /// `sample_every`-th statement per fingerprint (1 = keep all) plus
    /// every noteworthy statement.
    pub fn new(capacity: usize, sample_every: u64) -> Self {
        TraceStore {
            inner: Arc::new(Mutex::new(StoreInner::default())),
            next_id: Arc::new(AtomicU64::new(1)),
            capacity: capacity.max(1),
            sample_every: sample_every.max(1),
        }
    }

    /// Allocate the next trace ID. IDs are handed out before execution so
    /// resilience events fired mid-statement can reference them; note that
    /// under concurrent sessions the *assignment* of IDs to statements
    /// depends on thread interleaving, which is why IDs never participate
    /// in determinism gates.
    pub fn next_trace_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Decide retention for a statement of `fingerprint` with `flags`:
    /// noteworthy outcomes always keep, otherwise the per-fingerprint
    /// sequence number decides deterministically.
    pub fn should_keep(&self, fingerprint: u64, flags: StatementFlags, errored: bool) -> bool {
        if errored || flags.noteworthy() {
            return true;
        }
        let mut inner = self.inner.lock().expect("trace store poisoned");
        let seq = inner.seq.entry(fingerprint).or_insert(0);
        *seq += 1;
        (*seq - 1).is_multiple_of(self.sample_every)
    }

    /// Insert a trace (the caller already consulted [`Self::should_keep`]).
    pub fn store(&self, trace: StoredTrace) {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        inner.ring.push_back(trace);
        while inner.ring.len() > self.capacity {
            inner.ring.pop_front();
        }
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace store poisoned").ring.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recently stored trace.
    pub fn latest(&self) -> Option<StoredTrace> {
        let inner = self.inner.lock().expect("trace store poisoned");
        inner.ring.back().cloned()
    }

    /// Look a trace up by ID.
    pub fn by_id(&self, trace_id: u64) -> Option<StoredTrace> {
        let inner = self.inner.lock().expect("trace store poisoned");
        inner.ring.iter().find(|t| t.trace_id == trace_id).cloned()
    }

    /// The most recent trace recorded under a session label.
    pub fn latest_for_session(&self, label: &str) -> Option<StoredTrace> {
        let inner = self.inner.lock().expect("trace store poisoned");
        inner
            .ring
            .iter()
            .rev()
            .find(|t| t.session.as_deref() == Some(label))
            .cloned()
    }

    /// All retained traces, oldest first.
    pub fn traces(&self) -> Vec<StoredTrace> {
        let inner = self.inner.lock().expect("trace store poisoned");
        inner.ring.iter().cloned().collect()
    }

    /// Drop all retained traces and sampling state.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("trace store poisoned");
        *inner = StoreInner::default();
    }
}

fn span_to_chrome(span: &SpanRecord, tid: u64, out: &mut Vec<Json>) {
    let mut args: Vec<(String, Json)> = span
        .annotations
        .iter()
        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
        .collect();
    args.push((
        "wall_us".to_string(),
        Json::Int(span.wall.as_micros() as i64),
    ));
    let event = Json::Obj(vec![
        ("name".to_string(), Json::Str(span.name.clone())),
        ("ph".to_string(), Json::Str("X".to_string())),
        ("cat".to_string(), Json::Str("eii".to_string())),
        ("ts".to_string(), Json::Int(span.start_sim_ms * 1000)),
        (
            "dur".to_string(),
            Json::Int((span.sim_ms() * 1000).max(1)),
        ),
        ("pid".to_string(), Json::Int(1)),
        ("tid".to_string(), Json::Int(tid as i64)),
        ("args".to_string(), Json::Obj(args)),
    ]);
    out.push(event);
    for child in &span.children {
        span_to_chrome(child, tid, out);
    }
}

/// Render a stored trace as Chrome trace-event JSON (Perfetto-loadable):
/// `{"traceEvents": [...], "displayTimeUnit": "ms", ...}` with one
/// `"ph": "X"` complete event per span on the simulated timeline.
pub fn chrome_trace_json(stored: &StoredTrace) -> String {
    let mut events = Vec::new();
    for span in &stored.trace.spans {
        span_to_chrome(span, stored.trace_id, &mut events);
    }
    let doc = Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        (
            "displayTimeUnit".to_string(),
            Json::Str("ms".to_string()),
        ),
        (
            "otherData".to_string(),
            Json::Obj(vec![
                ("trace_id".to_string(), Json::Int(stored.trace_id as i64)),
                (
                    "fingerprint".to_string(),
                    Json::Str(format!("{:016x}", stored.fingerprint)),
                ),
                (
                    "session".to_string(),
                    match &stored.session {
                        Some(s) => Json::Str(s.clone()),
                        None => Json::Null,
                    },
                ),
                (
                    "flags".to_string(),
                    Json::Str(stored.flags.render()),
                ),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| doc.to_string())
}

/// One resilience/telemetry event, stamped with its owning trace when the
/// ambient request context carried one.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TelemetryEvent {
    /// Virtual-clock timestamp.
    pub sim_ms: f64,
    /// Event kind (`hedge.fired`, `breaker.to_open`, `shed`, ...).
    pub kind: String,
    /// Source or component the event concerns.
    pub source: String,
    /// Owning trace, when known.
    pub trace_id: Option<u64>,
    /// Free-form detail.
    pub detail: String,
}

/// Bounded ring of [`TelemetryEvent`]s. Cloning shares the ring; the
/// metrics registry embeds one so the resilience layer can record events
/// without new plumbing.
#[derive(Debug, Clone)]
pub struct EventLog {
    ring: Arc<Mutex<VecDeque<TelemetryEvent>>>,
    capacity: usize,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(512)
    }
}

impl EventLog {
    /// A log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            ring: Arc::new(Mutex::new(VecDeque::new())),
            capacity: capacity.max(1),
        }
    }

    /// Append an event, evicting the oldest past capacity.
    pub fn record(&self, event: TelemetryEvent) {
        let mut ring = self.ring.lock().expect("event log poisoned");
        ring.push_back(event);
        while ring.len() > self.capacity {
            ring.pop_front();
        }
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.ring.lock().expect("event log poisoned").iter().cloned().collect()
    }

    /// Retained events of one kind, oldest first.
    pub fn events_of_kind(&self, kind: &str) -> Vec<TelemetryEvent> {
        self.ring
            .lock()
            .expect("event log poisoned")
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Drop all events.
    pub fn clear(&self) {
        self.ring.lock().expect("event log poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stored(id: u64, fp: u64, session: Option<&str>) -> StoredTrace {
        StoredTrace {
            trace_id: id,
            fingerprint: fp,
            session: session.map(str::to_string),
            start_sim_ms: 0.0,
            flags: StatementFlags::default(),
            error: None,
            trace: Arc::new(QueryTrace {
                spans: vec![SpanRecord {
                    name: "statement".into(),
                    start_sim_ms: 0,
                    end_sim_ms: 12,
                    wall: Duration::from_micros(34),
                    annotations: vec![("rows".into(), "5".into())],
                    children: vec![SpanRecord {
                        name: "execute".into(),
                        start_sim_ms: 1,
                        end_sim_ms: 11,
                        wall: Duration::from_micros(20),
                        annotations: vec![],
                        children: vec![],
                    }],
                }],
            }),
        }
    }

    #[test]
    fn ring_bounds_and_lookup() {
        let store = TraceStore::new(2, 1);
        for i in 1..=3 {
            store.store(stored(i, 7, None));
        }
        assert_eq!(store.len(), 2);
        assert!(store.by_id(1).is_none(), "oldest evicted");
        assert_eq!(store.by_id(3).unwrap().trace_id, 3);
        assert_eq!(store.latest().unwrap().trace_id, 3);
    }

    #[test]
    fn per_session_retrieval_is_isolated() {
        let store = TraceStore::new(8, 1);
        store.store(stored(1, 7, Some("alice")));
        store.store(stored(2, 7, Some("bob")));
        store.store(stored(3, 7, Some("alice")));
        assert_eq!(store.latest_for_session("alice").unwrap().trace_id, 3);
        assert_eq!(store.latest_for_session("bob").unwrap().trace_id, 2);
        assert!(store.latest_for_session("carol").is_none());
    }

    #[test]
    fn tail_sampling_keeps_noteworthy() {
        let store = TraceStore::new(8, 100); // sample ~nothing
        assert!(store.should_keep(1, StatementFlags::default(), false), "seq 1 samples in");
        assert!(!store.should_keep(1, StatementFlags::default(), false));
        assert!(!store.should_keep(1, StatementFlags::default(), false));
        let hedged = StatementFlags {
            hedged: true,
            ..StatementFlags::default()
        };
        assert!(store.should_keep(1, hedged, false), "hedged always kept");
        assert!(store.should_keep(1, StatementFlags::default(), true), "errors always kept");
    }

    #[test]
    fn trace_ids_are_unique_and_monotonic() {
        let store = TraceStore::default();
        let a = store.next_trace_id();
        let b = store.next_trace_id();
        assert!(b > a);
    }

    #[test]
    fn chrome_export_parses_and_carries_spans() {
        let store = TraceStore::new(4, 1);
        store.store(stored(9, 0xabcd, Some("alice")));
        let json = chrome_trace_json(&store.by_id(9).unwrap());
        let doc: Json = serde_json::from_str(&json).expect("chrome JSON parses");
        let Json::Obj(fields) = &doc else {
            panic!("expected object")
        };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents");
        let Json::Arr(events) = events else {
            panic!("expected array")
        };
        assert_eq!(events.len(), 2, "one complete event per span");
        assert!(json.contains("\"ph\""), "{json}");
        assert!(json.contains("\"execute\""), "{json}");
        assert!(json.contains("\"displayTimeUnit\""), "{json}");
        // statement span: ts 0, dur 12ms = 12000µs
        assert!(json.contains("12000"), "{json}");
    }

    #[test]
    fn event_log_bounds_and_filters() {
        let log = EventLog::new(2);
        for i in 0..3 {
            log.record(TelemetryEvent {
                sim_ms: i as f64,
                kind: if i == 2 { "hedge.fired" } else { "shed" }.into(),
                source: "crm".into(),
                trace_id: Some(i),
                detail: String::new(),
            });
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events_of_kind("hedge.fired").len(), 1);
        assert_eq!(log.events_of_kind("hedge.fired")[0].trace_id, Some(2));
    }
}
