//! SQL AST → logical plan, with GAV view unfolding.
//!
//! A table name in FROM resolves first against the catalog's mediated-schema
//! views (unfolding the view body recursively, with cycle detection), then
//! against the federation's `source.table` namespace. This is exactly the
//! "reformulating a query posed over the virtual schema into queries over the
//! data sources" step of the classic EII architecture.

use std::sync::Arc;

use eii_catalog::Catalog;
use eii_data::{EiiError, Result, Row, Schema, Value};
use eii_expr::Expr;
use eii_federation::Federation;
use eii_sql::{JoinKind, Query, SelectExpr, SelectItem, SetQuery, SubqueryPred, TableRef};

use crate::logical::{AggItem, LogicalPlan};

/// Builds logical plans from parsed queries.
pub struct PlanBuilder<'a> {
    catalog: &'a Catalog,
    federation: &'a Federation,
}

impl<'a> PlanBuilder<'a> {
    /// New builder over a catalog (views) and federation (base tables).
    pub fn new(catalog: &'a Catalog, federation: &'a Federation) -> Self {
        PlanBuilder {
            catalog,
            federation,
        }
    }

    /// Build the plan for a (set) query.
    pub fn build(&self, query: &SetQuery) -> Result<LogicalPlan> {
        self.build_set(query, &mut Vec::new())
    }

    fn build_set(&self, query: &SetQuery, unfolding: &mut Vec<String>) -> Result<LogicalPlan> {
        match query {
            SetQuery::Select(q) => self.build_select(q, unfolding),
            SetQuery::UnionAll(l, r) => {
                let mut inputs = Vec::new();
                flatten_union(self.build_set(l, unfolding)?, &mut inputs);
                flatten_union(self.build_set(r, unfolding)?, &mut inputs);
                let plan = LogicalPlan::UnionAll { inputs };
                plan.schema()?; // validate branch compatibility eagerly
                Ok(plan)
            }
        }
    }

    fn build_select(&self, q: &Query, unfolding: &mut Vec<String>) -> Result<LogicalPlan> {
        // FROM: cross-join the comma list.
        let mut input = match q.from.split_first() {
            None => LogicalPlan::Values {
                schema: Arc::new(Schema::empty()),
                rows: vec![Row::default()],
            },
            Some((first, rest)) => {
                let mut plan = self.build_table_ref(first, unfolding)?;
                for t in rest {
                    let right = self.build_table_ref(t, unfolding)?;
                    plan = LogicalPlan::Join {
                        left: Box::new(plan),
                        right: Box::new(right),
                        kind: JoinKind::Cross,
                        on: None,
                    };
                }
                plan
            }
        };

        // WHERE.
        if let Some(filter) = &q.filter {
            input = LogicalPlan::Filter {
                input: Box::new(input),
                predicate: filter.clone(),
            };
        }

        // Subquery predicates desugar to semi/anti joins against the
        // (uncorrelated) subquery plan.
        for (i, pred) in q.subquery_preds.iter().enumerate() {
            input = self.apply_subquery_pred(input, pred, i, unfolding)?;
        }

        let has_aggs = q
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr: SelectExpr::Agg { .. }, .. }));
        let aggregated = has_aggs || !q.group_by.is_empty();

        let mut plan = if aggregated {
            self.build_aggregate(q, input)?
        } else {
            self.build_projection(q, input)?
        };

        // HAVING resolves against the output schema (aliases visible).
        if let Some(having) = &q.having {
            if !aggregated {
                return Err(EiiError::Plan(
                    "HAVING requires GROUP BY or aggregates".into(),
                ));
            }
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: having.clone(),
            };
        }

        if q.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }

        if !q.order_by.is_empty() {
            let out_schema = plan.schema()?;
            let keys = q
                .order_by
                .iter()
                .map(|item| {
                    // ORDER BY <ordinal>.
                    if let Expr::Literal(Value::Int(k)) = &item.expr {
                        let idx = *k;
                        if idx < 1 || idx as usize > out_schema.len() {
                            return Err(EiiError::Plan(format!(
                                "ORDER BY ordinal {idx} out of range 1..{}",
                                out_schema.len()
                            )));
                        }
                        let f = out_schema.field(idx as usize - 1);
                        return Ok((Expr::col(f.name.clone()), item.asc));
                    }
                    Ok((item.expr.clone(), item.asc))
                })
                .collect::<Result<Vec<_>>>()?;
            plan = attach_sort(plan, keys)?;
        }

        if let Some(n) = q.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    /// Desugar one `IN (SELECT ...)` / `EXISTS (SELECT ...)` predicate into
    /// a semi or anti join. The subquery is aliased to a fresh name so its
    /// columns cannot collide with the outer scope.
    fn apply_subquery_pred(
        &self,
        input: LogicalPlan,
        pred: &SubqueryPred,
        ordinal: usize,
        unfolding: &mut Vec<String>,
    ) -> Result<LogicalPlan> {
        let alias = format!("__subq{ordinal}");
        match pred {
            SubqueryPred::In {
                expr,
                query,
                negated,
            } => {
                let sub = self.build_set(query, unfolding)?;
                let sub_schema = sub.schema()?;
                if sub_schema.len() != 1 {
                    return Err(EiiError::Plan(format!(
                        "IN subquery must return exactly one column, got {}",
                        sub_schema.len()
                    )));
                }
                let col = sub_schema.field(0).name.clone();
                let sub = LogicalPlan::Alias {
                    input: Box::new(sub),
                    alias: alias.clone(),
                };
                // Fully qualify the probe expression against the outer
                // input so its columns cannot be captured by the subquery's
                // schema during pushdown.
                let in_schema = input.schema()?;
                let probe = expr.clone().transform(|e| match e {
                    Expr::Column { relation, name } => {
                        match in_schema.index_of(relation.as_deref(), &name) {
                            Ok(i) => {
                                let f = in_schema.field(i);
                                Expr::Column {
                                    relation: f.relation.clone(),
                                    name: f.name.clone(),
                                }
                            }
                            Err(_) => Expr::Column { relation, name },
                        }
                    }
                    other => other,
                });
                let on = probe.eq(Expr::qcol(alias, col));
                Ok(LogicalPlan::Join {
                    left: Box::new(input),
                    right: Box::new(sub),
                    kind: if *negated { JoinKind::Anti } else { JoinKind::Semi },
                    on: Some(on),
                })
            }
            SubqueryPred::Exists { query, negated } => {
                let sub = self.build_set(query, unfolding)?;
                let sub = LogicalPlan::Alias {
                    input: Box::new(sub),
                    alias,
                };
                // Uncorrelated EXISTS: a conditionless semi join keeps all
                // left rows iff the subquery is non-empty.
                Ok(LogicalPlan::Join {
                    left: Box::new(input),
                    right: Box::new(sub),
                    kind: if *negated { JoinKind::Anti } else { JoinKind::Semi },
                    on: None,
                })
            }
        }
    }

    fn build_projection(&self, q: &Query, input: LogicalPlan) -> Result<LogicalPlan> {
        let in_schema = input.schema()?;
        let mut exprs: Vec<(Expr, String)> = Vec::new();
        for item in &q.items {
            match item {
                SelectItem::Wildcard { relation } => {
                    let mut matched = false;
                    for f in in_schema.fields() {
                        let keep = match relation {
                            None => true,
                            Some(r) => f
                                .relation
                                .as_deref()
                                .is_some_and(|fr| fr.eq_ignore_ascii_case(r)),
                        };
                        if keep {
                            matched = true;
                            exprs.push((
                                Expr::Column {
                                    relation: f.relation.clone(),
                                    name: f.name.clone(),
                                },
                                f.name.clone(),
                            ));
                        }
                    }
                    if !matched {
                        return Err(EiiError::Plan(format!(
                            "wildcard {}.* matches no columns",
                            relation.as_deref().unwrap_or("")
                        )));
                    }
                }
                SelectItem::Expr {
                    expr: SelectExpr::Scalar(e),
                    alias,
                } => {
                    let name = alias.clone().unwrap_or_else(|| e.output_name());
                    exprs.push((e.clone(), name));
                }
                SelectItem::Expr {
                    expr: SelectExpr::Agg { .. },
                    ..
                } => unreachable!("aggregates handled by build_aggregate"),
            }
        }
        Ok(LogicalPlan::Project {
            input: Box::new(input),
            exprs,
        })
    }

    fn build_aggregate(&self, q: &Query, input: LogicalPlan) -> Result<LogicalPlan> {
        let group_by = q.group_by.clone();
        let mut aggs: Vec<AggItem> = Vec::new();
        // Final projection in select-list order, over the aggregate output.
        let mut out_exprs: Vec<(Expr, String)> = Vec::new();

        for item in &q.items {
            match item {
                SelectItem::Wildcard { .. } => {
                    return Err(EiiError::Plan(
                        "wildcard not allowed with GROUP BY / aggregates".into(),
                    ))
                }
                SelectItem::Expr {
                    expr: SelectExpr::Agg {
                        func,
                        arg,
                        distinct,
                    },
                    alias,
                } => {
                    let name = alias.clone().unwrap_or_else(|| {
                        SelectExpr::Agg {
                            func: *func,
                            arg: arg.clone(),
                            distinct: *distinct,
                        }
                        .output_name()
                    });
                    aggs.push(AggItem {
                        func: *func,
                        arg: arg.clone(),
                        distinct: *distinct,
                        name: name.clone(),
                    });
                    out_exprs.push((Expr::col(name.clone()), name));
                }
                SelectItem::Expr {
                    expr: SelectExpr::Scalar(e),
                    alias,
                } => {
                    // A scalar item must be one of the grouping expressions.
                    if !group_by.iter().any(|g| g == e) {
                        return Err(EiiError::Plan(format!(
                            "select expression {e} is neither aggregated nor grouped"
                        )));
                    }
                    let name = alias.clone().unwrap_or_else(|| e.output_name());
                    out_exprs.push((Expr::col(e.output_name()), name));
                }
            }
        }

        let agg = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_by,
            aggs,
        };
        Ok(LogicalPlan::Project {
            input: Box::new(agg),
            exprs: out_exprs,
        })
    }

    fn build_table_ref(
        &self,
        t: &TableRef,
        unfolding: &mut Vec<String>,
    ) -> Result<LogicalPlan> {
        match t {
            TableRef::Table { name, alias } => {
                // Views shadow source tables (that is what a mediated schema
                // is for).
                if let Some(view) = self.catalog.view(name) {
                    if unfolding.iter().any(|v| v == name) {
                        return Err(EiiError::Plan(format!(
                            "cyclic view definition involving {name}"
                        )));
                    }
                    unfolding.push(name.clone());
                    let body = self.build_set(&view.query, unfolding)?;
                    unfolding.pop();
                    let visible = alias.clone().unwrap_or_else(|| name.clone());
                    return Ok(LogicalPlan::Alias {
                        input: Box::new(body),
                        alias: visible,
                    });
                }
                // Source table: must be source.table.
                let base_schema = self.federation.table_schema(name)?;
                let (source, table) = name
                    .split_once('.')
                    .expect("federation.table_schema validated the dot");
                let visible = alias
                    .clone()
                    .unwrap_or_else(|| table.to_string());
                Ok(LogicalPlan::SourceScan {
                    source: source.to_string(),
                    table: table.to_string(),
                    alias: visible,
                    base_schema,
                    pushed_filters: vec![],
                    projection: None,
                    limit: None,
                })
            }
            TableRef::Subquery { query, alias } => {
                let body = self.build_set(query, unfolding)?;
                Ok(LogicalPlan::Alias {
                    input: Box::new(body),
                    alias: alias.clone(),
                })
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let l = self.build_table_ref(left, unfolding)?;
                let r = self.build_table_ref(right, unfolding)?;
                Ok(LogicalPlan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    kind: *kind,
                    on: on.clone(),
                })
            }
        }
    }
}

/// Place a Sort at the right level: above the projection when the keys are
/// output columns (aliases, aggregate results), or *below* it when they
/// reference pre-projection input columns (`ORDER BY t.sev` with `t.sev` not
/// in the select list). Sorting below the projection is sound because the
/// projection is per-row; Distinct preserves encounter order, so sorting
/// below it is sound too.
fn attach_sort(plan: LogicalPlan, keys: Vec<(Expr, bool)>) -> Result<LogicalPlan> {
    let schema = plan.schema()?;
    if keys.iter().all(|(e, _)| crate::util::resolves_in(e, &schema)) {
        return Ok(LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        });
    }
    match plan {
        LogicalPlan::Project { input, exprs } => {
            let in_schema = input.schema()?;
            let rewritten = keys
                .into_iter()
                .map(|(e, asc)| {
                    if crate::util::resolves_in(&e, &in_schema) {
                        return Ok((e, asc));
                    }
                    match crate::util::rewrite_through_project(&e, &exprs) {
                        Some(r) if crate::util::resolves_in(&r, &in_schema) => Ok((r, asc)),
                        _ => Err(EiiError::Plan(format!(
                            "ORDER BY expression {e} references neither an output \
                             column nor an input column"
                        ))),
                    }
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(LogicalPlan::Project {
                input: Box::new(LogicalPlan::Sort {
                    input,
                    keys: rewritten,
                }),
                exprs,
            })
        }
        LogicalPlan::Distinct { input } => Ok(LogicalPlan::Distinct {
            input: Box::new(attach_sort(*input, keys)?),
        }),
        other => {
            let (e, _) = &keys[0];
            Err(EiiError::Plan(format!(
                "ORDER BY expression {e} does not resolve against the query output {}",
                other.schema()?
            )))
        }
    }
}

fn flatten_union(plan: LogicalPlan, out: &mut Vec<LogicalPlan>) {
    match plan {
        LogicalPlan::UnionAll { inputs } => out.extend(inputs),
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, SimClock};
    use eii_federation::{LinkProfile, RelationalConnector, WireFormat};
    use eii_sql::parse_query;
    use eii_storage::{Database, TableDef};

    fn setup() -> (Catalog, Federation) {
        let crm = Database::new("crm", SimClock::new());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
            Field::new("region", DataType::Str),
        ]));
        let t = crm
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        t.write().insert(row![1i64, "alice", "west"]).unwrap();

        let orders = Database::new("orders", SimClock::new());
        let oschema = Arc::new(Schema::new(vec![
            Field::new("order_id", DataType::Int).not_null(),
            Field::new("customer_id", DataType::Int),
            Field::new("total", DataType::Float),
        ]));
        orders
            .create_table(TableDef::new("orders", oschema).with_primary_key(0))
            .unwrap();

        let fed = Federation::new();
        fed.register(
            Arc::new(RelationalConnector::new(crm)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        fed.register(
            Arc::new(RelationalConnector::new(orders)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        (Catalog::new(), fed)
    }

    fn build(sql: &str, catalog: &Catalog, fed: &Federation) -> Result<LogicalPlan> {
        PlanBuilder::new(catalog, fed).build(&parse_query(sql).unwrap())
    }

    #[test]
    fn scan_with_default_alias() {
        let (cat, fed) = setup();
        let p = build("SELECT name FROM crm.customers", &cat, &fed).unwrap();
        let s = p.schema().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.field(0).name, "name");
        assert!(p.display().contains("Scan crm.customers AS customers"));
    }

    #[test]
    fn unknown_table_fails() {
        let (cat, fed) = setup();
        assert_eq!(
            build("SELECT 1 FROM nowhere.t", &cat, &fed)
                .unwrap_err()
                .kind(),
            "not_found"
        );
        assert_eq!(
            build("SELECT 1 FROM bare_name", &cat, &fed)
                .unwrap_err()
                .kind(),
            "not_found"
        );
    }

    #[test]
    fn view_unfolds_with_alias() {
        let (cat, fed) = setup();
        cat.create_view_sql(
            "CREATE VIEW west_customers AS SELECT id, name FROM crm.customers WHERE region = 'west'",
        )
        .unwrap();
        let p = build("SELECT w.name FROM west_customers AS w", &cat, &fed).unwrap();
        let text = p.display();
        assert!(text.contains("Alias w"), "{text}");
        assert!(text.contains("Scan crm.customers"), "{text}");
        assert_eq!(p.schema().unwrap().len(), 1);
    }

    #[test]
    fn views_compose_and_cycles_are_detected() {
        let (cat, fed) = setup();
        cat.create_view_sql("CREATE VIEW v1 AS SELECT id, name FROM crm.customers")
            .unwrap();
        cat.create_view_sql("CREATE VIEW v2 AS SELECT name FROM v1").unwrap();
        let p = build("SELECT * FROM v2", &cat, &fed).unwrap();
        assert!(p.display().contains("Scan crm.customers"));

        // A cycle: v3 -> v4 -> v3.
        cat.create_view_sql("CREATE VIEW v3 AS SELECT name FROM v4_placeholder")
            .ok();
        let c2 = Catalog::new();
        c2.create_view("a", "CREATE VIEW a AS SELECT x FROM b", parse_query("SELECT x FROM b").unwrap())
            .unwrap();
        c2.create_view("b", "CREATE VIEW b AS SELECT x FROM a", parse_query("SELECT x FROM a").unwrap())
            .unwrap();
        let err = build("SELECT * FROM a", &c2, &fed).unwrap_err();
        assert_eq!(err.kind(), "plan");
        assert!(err.message().contains("cyclic"));
    }

    #[test]
    fn aggregate_plan_shape() {
        let (cat, fed) = setup();
        let p = build(
            "SELECT region, COUNT(*) AS n FROM crm.customers GROUP BY region HAVING n > 1",
            &cat,
            &fed,
        )
        .unwrap();
        let text = p.display();
        assert!(text.contains("Aggregate group=[region]"), "{text}");
        assert!(text.contains("Filter (n > 1)"), "{text}");
        let s = p.schema().unwrap();
        assert_eq!(s.field(0).name, "region");
        assert_eq!(s.field(1).name, "n");
    }

    #[test]
    fn ungrouped_scalar_rejected() {
        let (cat, fed) = setup();
        let err = build(
            "SELECT name, COUNT(*) FROM crm.customers GROUP BY region",
            &cat,
            &fed,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn having_without_group_rejected() {
        let (cat, fed) = setup();
        let err = build("SELECT name FROM crm.customers HAVING name = 'x'", &cat, &fed)
            .unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn order_by_ordinal_resolves() {
        let (cat, fed) = setup();
        let p = build("SELECT id, name FROM crm.customers ORDER BY 2 DESC", &cat, &fed).unwrap();
        assert!(p.display().contains("Sort [name DESC]"));
        let err = build("SELECT id FROM crm.customers ORDER BY 5", &cat, &fed).unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn union_all_flattens() {
        let (cat, fed) = setup();
        let p = build(
            "SELECT id FROM crm.customers UNION ALL SELECT order_id FROM orders.orders UNION ALL SELECT id FROM crm.customers",
            &cat,
            &fed,
        )
        .unwrap();
        match p {
            LogicalPlan::UnionAll { inputs } => assert_eq!(inputs.len(), 3),
            other => panic!("expected union, got {}", other.display()),
        }
    }

    #[test]
    fn union_type_mismatch_rejected() {
        let (cat, fed) = setup();
        let err = build(
            "SELECT id FROM crm.customers UNION ALL SELECT name FROM crm.customers",
            &cat,
            &fed,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn select_without_from() {
        let (cat, fed) = setup();
        let p = build("SELECT 1 + 1 AS two", &cat, &fed).unwrap();
        let s = p.schema().unwrap();
        assert_eq!(s.field(0).name, "two");
        assert_eq!(s.field(0).data_type, DataType::Int);
    }

    #[test]
    fn cross_join_from_comma_list() {
        let (cat, fed) = setup();
        let p = build(
            "SELECT c.name, o.total FROM crm.customers c, orders.orders o WHERE c.id = o.customer_id",
            &cat,
            &fed,
        )
        .unwrap();
        assert!(p.display().contains("CROSS JOIN"));
    }
}
