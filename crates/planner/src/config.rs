//! Planner configuration: each optimization the paper's articles discuss is
//! an independent switch, so experiments can ablate them one at a time.

use eii_federation::Dialect;

/// Optimizer switches.
#[derive(Debug, Clone, Default)]
pub struct PlannerConfig {
    /// Push dialect-supported filters into component queries.
    pub pushdown_filters: bool,
    /// Ask sources for only the needed columns.
    pub pushdown_projection: bool,
    /// Reorder inner joins by estimated cost.
    pub reorder_joins: bool,
    /// Push LIMIT into source component queries where the source honors it
    /// and no assembly-site work sits between the limit and the scan.
    pub pushdown_limits: bool,
    /// Use bind joins (ship join keys to the source) where profitable or
    /// required by access patterns.
    pub use_bind_joins: bool,
    /// Choose the cheapest assembly site for cross-source joins instead of
    /// always assembling at the hub.
    pub choose_assembly_site: bool,
    /// Fetch independent sources in parallel (affects elapsed time, not
    /// bytes).
    pub parallel_fetch: bool,
    /// Rewrite query subtrees that a registered materialized view can
    /// answer ("answering queries using views") when the cost model says
    /// the local materialization beats federated execution.
    pub rewrite_matviews: bool,
    /// When set, the planner ignores each source's declared dialect and
    /// assumes this one for pushdown decisions (the lowest-common-
    /// denominator wrapper of experiment E11). It must be a *subset* of
    /// every real dialect or sources will reject component queries.
    pub dialect_override: Option<Dialect>,
    /// Mark hub-side Filter/Project/HashJoin/Aggregate operators for the
    /// executor's vectorized columnar path (typed column kernels over
    /// selection vectors) instead of row-at-a-time interpretation. Answers
    /// and simulated costs are identical either way; only wall-clock time
    /// changes (experiment E21).
    pub vectorize: bool,
    /// Rows per columnar chunk fed through vectorized operators (the
    /// cancellation/deadline check granularity). 0 means the executor
    /// default.
    pub batch_size: usize,
}

impl PlannerConfig {
    /// Everything on — the real EII engine.
    pub fn optimized() -> Self {
        PlannerConfig {
            pushdown_filters: true,
            pushdown_projection: true,
            reorder_joins: true,
            pushdown_limits: true,
            use_bind_joins: true,
            choose_assembly_site: true,
            parallel_fetch: true,
            rewrite_matviews: true,
            dialect_override: None,
            vectorize: true,
            batch_size: 0,
        }
    }

    /// Everything off — the "simplistic approach that some early EII vendors
    /// used ... pull out the relevant data from all the data sources and
    /// process it entirely there" (Bitton §3). Bind joins stay available
    /// only where an access pattern *requires* them (there is no other way
    /// to talk to such sources).
    pub fn naive() -> Self {
        PlannerConfig::default()
    }

    /// Naive except filters (the first optimization every engine grew).
    pub fn filters_only() -> Self {
        PlannerConfig {
            pushdown_filters: true,
            ..PlannerConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(PlannerConfig::optimized().pushdown_filters);
        assert!(PlannerConfig::optimized().vectorize);
        assert!(!PlannerConfig::naive().pushdown_filters);
        assert!(!PlannerConfig::naive().vectorize);
        assert!(PlannerConfig::filters_only().pushdown_filters);
        assert!(!PlannerConfig::filters_only().reorder_joins);
    }
}
