//! Cardinality estimation and cost prediction.
//!
//! The cost model drives join ordering, bind-join and assembly-site
//! decisions, and produces the *execution-time predictions* whose calibration
//! experiment E12 measures (Sikka §8: "query optimization and query
//! execution-time prediction ... continue to be underserved issues").

use eii_data::{Result, Value};
use eii_expr::{BinaryOp, Expr};
use eii_federation::{Federation, SourceQuery};
use eii_sql::JoinKind;
use eii_storage::TableStats;

use std::sync::Arc;

use crate::feedback::CardinalityFeedback;
use crate::logical::LogicalPlan;
use crate::physical::PhysicalPlan;

/// Default selectivity guesses (System R heritage) for predicates the model
/// cannot analyze.
const DEFAULT_EQ_SEL: f64 = 0.1;
const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
const DEFAULT_LIKE_SEL: f64 = 0.25;
const DEFAULT_OTHER_SEL: f64 = 0.5;

/// Predicted execution profile of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanEstimate {
    /// Output rows.
    pub rows: f64,
    /// Bytes expected to cross the network.
    pub bytes: f64,
    /// Predicted simulated elapsed milliseconds.
    pub sim_ms: f64,
}

/// Estimates over a federation's statistics.
pub struct CostModel<'a> {
    federation: &'a Federation,
    /// Hub-side per-row processing cost (join/aggregate work), sim ms.
    pub hub_ms_per_row: f64,
    /// Cross-query cardinality corrections ([`CardinalityFeedback`]); when
    /// absent the model estimates from statistics alone.
    feedback: Option<Arc<CardinalityFeedback>>,
}

impl<'a> CostModel<'a> {
    /// New model with default hub speed.
    pub fn new(federation: &'a Federation) -> Self {
        CostModel {
            federation,
            hub_ms_per_row: 0.0005,
            feedback: None,
        }
    }

    /// Attach a cardinality-feedback store: physical estimates for subtrees
    /// the store has observed are scaled by the learned actual/estimated
    /// ratio. An empty store leaves every estimate unchanged.
    pub fn with_feedback(mut self, feedback: Arc<CardinalityFeedback>) -> Self {
        self.feedback = Some(feedback);
        self
    }

    fn stats(&self, source: &str, table: &str) -> TableStats {
        self.federation
            .table_stats(&format!("{source}.{table}"))
            .unwrap_or_default()
    }

    /// Selectivity of a predicate against a table's statistics
    /// (`schema_col` resolves an unqualified column name to its position).
    pub fn selectivity(
        &self,
        pred: &Expr,
        stats: &TableStats,
        col_index: &dyn Fn(&str) -> Option<usize>,
    ) -> f64 {
        match pred {
            Expr::Binary { left, op, right } if op.is_comparison() => {
                let col = match (&**left, &**right) {
                    (Expr::Column { name, .. }, Expr::Literal(_)) => Some(name),
                    (Expr::Literal(_), Expr::Column { name, .. }) => Some(name),
                    _ => None,
                };
                let Some(col) = col.and_then(|c| col_index(c)) else {
                    return if *op == BinaryOp::Eq {
                        DEFAULT_EQ_SEL
                    } else {
                        DEFAULT_RANGE_SEL
                    };
                };
                match op {
                    BinaryOp::Eq => stats.eq_selectivity(col),
                    BinaryOp::NotEq => 1.0 - stats.eq_selectivity(col),
                    BinaryOp::Lt | BinaryOp::LtEq => {
                        let lit = literal_of(left, right);
                        stats.range_selectivity(col, None, lit.as_ref())
                    }
                    BinaryOp::Gt | BinaryOp::GtEq => {
                        let lit = literal_of(left, right);
                        stats.range_selectivity(col, lit.as_ref(), None)
                    }
                    _ => DEFAULT_OTHER_SEL,
                }
            }
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                self.selectivity(left, stats, col_index) * self.selectivity(right, stats, col_index)
            }
            Expr::Binary {
                left,
                op: BinaryOp::Or,
                right,
            } => {
                let a = self.selectivity(left, stats, col_index);
                let b = self.selectivity(right, stats, col_index);
                (a + b - a * b).min(1.0)
            }
            Expr::Like { .. } => DEFAULT_LIKE_SEL,
            Expr::InList { expr, list, .. } => {
                if let Expr::Column { name, .. } = &**expr {
                    if let Some(col) = col_index(name) {
                        return (stats.eq_selectivity(col) * list.len() as f64).min(1.0);
                    }
                }
                (DEFAULT_EQ_SEL * list.len() as f64).min(1.0)
            }
            Expr::Between { expr, low, high, .. } => {
                if let Expr::Column { name, .. } = &**expr {
                    if let Some(col) = col_index(name) {
                        let lo = expr_literal(low);
                        let hi = expr_literal(high);
                        return stats.range_selectivity(col, lo.as_ref(), hi.as_ref());
                    }
                }
                DEFAULT_RANGE_SEL
            }
            Expr::IsNull { .. } => DEFAULT_EQ_SEL,
            _ => DEFAULT_OTHER_SEL,
        }
    }

    /// Estimated output cardinality of a logical plan.
    pub fn rows(&self, plan: &LogicalPlan) -> Result<f64> {
        Ok(match plan {
            LogicalPlan::SourceScan {
                source,
                table,
                base_schema,
                pushed_filters,
                ..
            } => {
                let stats = self.stats(source, table);
                let lookup = |name: &str| base_schema.index_of(None, name).ok();
                let mut rows = stats.row_count as f64;
                for f in pushed_filters {
                    rows *= self.selectivity(f, &stats, &lookup);
                }
                rows
            }
            LogicalPlan::Values { rows, .. } => rows.len() as f64,
            LogicalPlan::MatViewScan { local, .. } => local.rows,
            LogicalPlan::Filter { input, predicate } => {
                // Generic filter: use default selectivities (no stats for
                // derived relations).
                let stats = TableStats::default();
                let sel = self.selectivity(predicate, &stats, &|_| None);
                self.rows(input)? * sel
            }
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Alias { input, .. } => self.rows(input)?,
            LogicalPlan::Limit { input, n } => self.rows(input)?.min(*n as f64),
            LogicalPlan::Distinct { input } => self.rows(input)? * 0.9,
            LogicalPlan::Join {
                left, right, kind, on,
            } => {
                let l = self.rows(left)?;
                let r = self.rows(right)?;
                match kind {
                    JoinKind::Cross if on.is_none() => l * r,
                    JoinKind::Left => (l * r / r.max(1.0)).max(l),
                    // Semi/anti joins only ever shrink the left side.
                    JoinKind::Semi | JoinKind::Anti => (l * 0.5).max(1.0).min(l),
                    _ => {
                        // Equi-join heuristic: |L|*|R| / max(|L|,|R|).
                        if on.is_some() {
                            (l * r / l.max(r).max(1.0)).max(1.0)
                        } else {
                            l * r
                        }
                    }
                }
            }
            LogicalPlan::Aggregate {
                input, group_by, ..
            } => {
                let n = self.rows(input)?;
                if group_by.is_empty() {
                    1.0
                } else {
                    // Groups grow sublinearly with input.
                    n.sqrt().max(1.0).min(n)
                }
            }
            LogicalPlan::UnionAll { inputs } => {
                let mut total = 0.0;
                for i in inputs {
                    total += self.rows(i)?;
                }
                total
            }
        })
    }

    /// Estimated average row width (bytes) of a plan's output.
    pub fn row_width(&self, plan: &LogicalPlan) -> Result<f64> {
        Ok(match plan {
            LogicalPlan::SourceScan {
                source,
                table,
                base_schema,
                projection,
                ..
            } => {
                let stats = self.stats(source, table);
                match projection {
                    None => {
                        if stats.columns.is_empty() {
                            base_schema.len() as f64 * 12.0
                        } else {
                            stats.avg_row_width()
                        }
                    }
                    Some(cols) => cols
                        .iter()
                        .map(|c| {
                            base_schema
                                .index_of(None, c)
                                .ok()
                                .and_then(|i| stats.columns.get(i))
                                .map_or(12.0, |cs| cs.avg_width)
                        })
                        .sum(),
                }
            }
            other => {
                // Derived relations: 12 bytes per column as a crude default.
                other.schema().map(|s| s.len() as f64 * 12.0)?
            }
        })
    }

    /// Predict the execution profile of a logical plan executed with all
    /// data assembled at the hub (the baseline the executor refines).
    pub fn estimate(&self, plan: &LogicalPlan) -> Result<PlanEstimate> {
        Ok(match plan {
            LogicalPlan::SourceScan { source, table, .. } => {
                let rows = self.rows(plan)?;
                let width = self.row_width(plan)?;
                let bytes = rows * width;
                let stats = self.stats(source, table);
                let link = self
                    .federation
                    .source(source)
                    .map(|h| h.link())
                    .unwrap_or(eii_federation::LinkProfile::local());
                let sim_ms = link.transfer_ms(bytes as usize)
                    + stats.row_count as f64 * 0.001;
                PlanEstimate { rows, bytes, sim_ms }
            }
            // The rewrite pass froze this node's estimate when it chose it.
            LogicalPlan::MatViewScan { local, .. } => *local,
            LogicalPlan::Join { left, right, .. } => {
                // Access-limited sides execute as bind joins: one service
                // call per probe key, and only matching rows ship back.
                for (scan_side, other_side) in [(right, left), (left, right)] {
                    if let LogicalPlan::SourceScan { source, table, .. } = &**scan_side {
                        let Ok(handle) = self.federation.source(source) else {
                            continue;
                        };
                        if handle
                            .connector()
                            .capabilities()
                            .pattern_for(table)
                            .is_none()
                        {
                            continue;
                        }
                        let probe = self.estimate(other_side)?;
                        let rows = self.rows(plan)?;
                        let width = self.row_width(scan_side)?;
                        let match_bytes = rows * width;
                        let link = handle.link();
                        let calls = probe.rows.max(1.0);
                        let transfer = if link.bandwidth_bytes_per_ms.is_infinite() {
                            0.0
                        } else {
                            match_bytes / link.bandwidth_bytes_per_ms
                        };
                        return Ok(PlanEstimate {
                            rows,
                            bytes: probe.bytes + match_bytes,
                            sim_ms: probe.sim_ms
                                + calls * link.latency_ms
                                + transfer
                                + (probe.rows + rows) * self.hub_ms_per_row,
                        });
                    }
                }
                let l = self.estimate(left)?;
                let r = self.estimate(right)?;
                let rows = self.rows(plan)?;
                PlanEstimate {
                    rows,
                    bytes: l.bytes + r.bytes,
                    sim_ms: l.sim_ms.max(r.sim_ms)
                        + (l.rows + r.rows + rows) * self.hub_ms_per_row,
                }
            }
            LogicalPlan::UnionAll { inputs } => {
                let mut est = PlanEstimate::default();
                for i in inputs {
                    let e = self.estimate(i)?;
                    est.rows += e.rows;
                    est.bytes += e.bytes;
                    est.sim_ms = est.sim_ms.max(e.sim_ms);
                }
                est
            }
            other => {
                let children = other.children();
                let mut est = PlanEstimate::default();
                for c in children {
                    let e = self.estimate(c)?;
                    est.rows += e.rows;
                    est.bytes += e.bytes;
                    est.sim_ms += e.sim_ms;
                }
                let out_rows = self.rows(other)?;
                PlanEstimate {
                    rows: out_rows,
                    bytes: est.bytes,
                    sim_ms: est.sim_ms + est.rows * self.hub_ms_per_row,
                }
            }
        })
    }

    /// Predicted profile of one component query: rows surviving the pushed
    /// filters (and limit), the bytes they occupy on the wire, and source
    /// scan + transfer time.
    fn estimate_component(&self, source: &str, query: &SourceQuery) -> PlanEstimate {
        let stats = self.stats(source, &query.table);
        let base_schema = self
            .federation
            .table_schema(&format!("{source}.{}", query.table))
            .ok();
        let lookup = |name: &str| {
            base_schema
                .as_ref()
                .and_then(|s| s.index_of(None, name).ok())
        };
        let mut rows = stats.row_count as f64;
        for f in &query.filters {
            rows *= self.selectivity(f, &stats, &lookup);
        }
        if let Some(n) = query.limit {
            rows = rows.min(n as f64);
        }
        let width = match &query.projection {
            None if !stats.columns.is_empty() => stats.avg_row_width(),
            None => 48.0,
            Some(cols) => cols
                .iter()
                .map(|c| {
                    lookup(c)
                        .and_then(|i| stats.columns.get(i))
                        .map_or(12.0, |cs| cs.avg_width)
                })
                .sum(),
        };
        let bytes = rows * width;
        let link = self
            .federation
            .source(source)
            .map(|h| h.link())
            .unwrap_or(eii_federation::LinkProfile::local());
        PlanEstimate {
            rows,
            bytes,
            sim_ms: link.transfer_ms(bytes as usize) + stats.row_count as f64 * 0.001,
        }
    }

    /// Predict the execution profile of one physical operator's subtree.
    /// `EXPLAIN ANALYZE` prints this next to each operator's actuals; unlike
    /// [`CostModel::estimate`] it follows the *physical* shape the planner
    /// chose (bind joins, pushed component queries, parallel unions).
    pub fn estimate_physical(&self, plan: &PhysicalPlan) -> Result<PlanEstimate> {
        let children = plan.children();
        let mut kids = Vec::with_capacity(children.len());
        for child in children {
            kids.push(self.estimate_physical(child)?);
        }
        Ok(self.estimate_from_children(plan, &kids))
    }

    /// One operator's estimate derived from its children's already-computed
    /// estimates (in [`PhysicalPlan::children`] order) — the per-node core
    /// of [`CostModel::estimate_physical`]. Exposed so tree walkers (the
    /// query log's est-vs-actual collector) can estimate every node of a
    /// plan in one bottom-up pass instead of re-estimating each subtree,
    /// which re-clones source table statistics O(depth) times per scan.
    pub fn estimate_from_children(
        &self,
        plan: &PhysicalPlan,
        kids: &[PlanEstimate],
    ) -> PlanEstimate {
        let est = match plan {
            PhysicalPlan::Source { source, query, .. } => self.estimate_component(source, query),
            PhysicalPlan::Values { rows, .. } => PlanEstimate {
                rows: rows.len() as f64,
                bytes: 0.0,
                sim_ms: 0.0,
            },
            // Frozen by the rewrite pass when it chose the view over the
            // federated alternative.
            PhysicalPlan::MatViewScan { local, .. } => *local,
            PhysicalPlan::Filter { predicate, .. } => {
                let e = kids[0];
                let sel = self.selectivity(predicate, &TableStats::default(), &|_| None);
                PlanEstimate {
                    rows: e.rows * sel,
                    bytes: e.bytes,
                    sim_ms: e.sim_ms + e.rows * self.hub_ms_per_row,
                }
            }
            PhysicalPlan::Project { .. }
            | PhysicalPlan::Sort { .. }
            | PhysicalPlan::Rename { .. } => {
                let e = kids[0];
                PlanEstimate {
                    sim_ms: e.sim_ms + e.rows * self.hub_ms_per_row,
                    ..e
                }
            }
            PhysicalPlan::Limit { n, .. } => {
                let e = kids[0];
                PlanEstimate {
                    rows: e.rows.min(*n as f64),
                    ..e
                }
            }
            PhysicalPlan::Distinct { .. } => {
                let e = kids[0];
                PlanEstimate {
                    rows: e.rows * 0.9,
                    bytes: e.bytes,
                    sim_ms: e.sim_ms + e.rows * self.hub_ms_per_row,
                }
            }
            PhysicalPlan::HashJoin { kind, parallel, .. }
            | PhysicalPlan::NestedLoopJoin { kind, parallel, .. } => {
                let (l, r) = (kids[0], kids[1]);
                let rows = join_rows(l.rows, r.rows, *kind, plan.join_condition_present());
                let input_sim = if *parallel {
                    l.sim_ms.max(r.sim_ms)
                } else {
                    l.sim_ms + r.sim_ms
                };
                PlanEstimate {
                    rows,
                    bytes: l.bytes + r.bytes,
                    sim_ms: input_sim + (l.rows + r.rows + rows) * self.hub_ms_per_row,
                }
            }
            PhysicalPlan::BindJoin {
                source, template, ..
            } => {
                let l = kids[0];
                let right = self.estimate_component(source, template);
                // One round trip per distinct probe key; only matching rows
                // ship back.
                let rows = join_rows(l.rows, right.rows, JoinKind::Inner, true);
                let width = if right.rows > 0.0 {
                    right.bytes / right.rows
                } else {
                    0.0
                };
                let match_bytes = rows * width;
                let link = self
                    .federation
                    .source(source)
                    .map(|h| h.link())
                    .unwrap_or(eii_federation::LinkProfile::local());
                PlanEstimate {
                    rows,
                    bytes: l.bytes + match_bytes,
                    sim_ms: l.sim_ms
                        + l.rows.max(1.0) * link.latency_ms
                        + link.transfer_ms(match_bytes as usize)
                        + (l.rows + rows) * self.hub_ms_per_row,
                }
            }
            PhysicalPlan::Aggregate { group_by, .. } => {
                let e = kids[0];
                let rows = if group_by.is_empty() {
                    1.0
                } else {
                    e.rows.sqrt().max(1.0).min(e.rows)
                };
                PlanEstimate {
                    rows,
                    bytes: e.bytes,
                    sim_ms: e.sim_ms + e.rows * self.hub_ms_per_row,
                }
            }
            PhysicalPlan::UnionAll { parallel, .. } => {
                let mut est = PlanEstimate::default();
                for e in kids {
                    est.rows += e.rows;
                    est.bytes += e.bytes;
                    est.sim_ms = if *parallel {
                        est.sim_ms.max(e.sim_ms)
                    } else {
                        est.sim_ms + e.sim_ms
                    };
                }
                est
            }
        };
        // Fold in learned cardinality corrections last so feedback composes
        // with (rather than replaces) the statistics-based estimate; an
        // absent or empty store leaves `est` untouched.
        match &self.feedback {
            Some(fb) if !fb.is_empty() => PlanEstimate {
                rows: fb.corrected_rows(CardinalityFeedback::node_key(plan), est.rows),
                ..est
            },
            _ => est,
        }
    }
}

/// Shared equi-join cardinality heuristic: `|L|*|R| / max(|L|,|R|)` with a
/// condition, the full cross product without one; outer joins keep at least
/// the left side.
fn join_rows(l: f64, r: f64, kind: JoinKind, has_condition: bool) -> f64 {
    match kind {
        JoinKind::Left => (l * r / r.max(1.0)).max(l),
        JoinKind::Semi | JoinKind::Anti => (l * 0.5).max(1.0).min(l),
        _ if has_condition => (l * r / l.max(r).max(1.0)).max(1.0),
        _ => l * r,
    }
}

fn literal_of(left: &Expr, right: &Expr) -> Option<Value> {
    match (left, right) {
        (_, Expr::Literal(v)) => Some(v.clone()),
        (Expr::Literal(v), _) => Some(v.clone()),
        _ => None,
    }
}

fn expr_literal(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(v) => Some(v.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema, SimClock};
    use eii_federation::{LinkProfile, RelationalConnector, WireFormat};
    use eii_storage::{Database, TableDef};
    use std::sync::Arc;

    fn fed_with_customers(n: i64) -> Federation {
        let db = Database::new("crm", SimClock::new());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("region", DataType::Str),
        ]));
        let t = db
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        for i in 0..n {
            t.write()
                .insert(row![i, format!("region{}", i % 4)])
                .unwrap();
        }
        let fed = Federation::new();
        fed.register(
            Arc::new(RelationalConnector::new(db)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        fed
    }

    fn scan(fed: &Federation, filters: Vec<Expr>) -> LogicalPlan {
        LogicalPlan::SourceScan {
            source: "crm".into(),
            table: "customers".into(),
            alias: "c".into(),
            base_schema: fed.table_schema("crm.customers").unwrap(),
            pushed_filters: filters,
            projection: None,
            limit: None,
        }
    }

    #[test]
    fn scan_estimate_uses_stats() {
        let fed = fed_with_customers(100);
        let model = CostModel::new(&fed);
        assert!((model.rows(&scan(&fed, vec![])).unwrap() - 100.0).abs() < 1e-9);
        // region = 'region0' has ndv 4 -> 25 rows.
        let filtered = scan(&fed, vec![Expr::col("region").eq(Expr::lit("region0"))]);
        assert!((model.rows(&filtered).unwrap() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn join_estimate_is_submultiplicative() {
        let fed = fed_with_customers(100);
        let model = CostModel::new(&fed);
        let j = LogicalPlan::Join {
            left: Box::new(scan(&fed, vec![])),
            right: Box::new(scan(&fed, vec![])),
            kind: eii_sql::JoinKind::Inner,
            on: Some(Expr::qcol("c", "id").eq(Expr::qcol("c", "id"))),
        };
        let rows = model.rows(&j).unwrap();
        assert!(rows <= 100.0 * 100.0);
        assert!(rows >= 1.0);
    }

    #[test]
    fn estimate_includes_network_latency() {
        let fed = fed_with_customers(10);
        let model = CostModel::new(&fed);
        let e = model.estimate(&scan(&fed, vec![])).unwrap();
        assert!(e.sim_ms >= LinkProfile::lan().latency_ms);
        assert!(e.bytes > 0.0);
    }

    #[test]
    fn range_selectivity_from_minmax() {
        let fed = fed_with_customers(100);
        let model = CostModel::new(&fed);
        // id < 50 covers about half of [0, 99].
        let filtered = scan(&fed, vec![Expr::col("id").lt(Expr::lit(50i64))]);
        let rows = model.rows(&filtered).unwrap();
        assert!((40.0..=60.0).contains(&rows), "rows={rows}");
    }

    #[test]
    fn feedback_corrects_physical_estimates() {
        use crate::feedback::CardinalityFeedback;

        let fed = fed_with_customers(100);
        let schema = Arc::new(Schema::new(vec![Field::new("id", DataType::Int)]));
        let plan = PhysicalPlan::Values {
            schema,
            rows: vec![row![1i64], row![2i64]],
        };
        // Without feedback (and with an empty store) the estimate is the
        // literal row count.
        let base = CostModel::new(&fed).estimate_physical(&plan).unwrap();
        assert!((base.rows - 2.0).abs() < 1e-9);
        let fb = Arc::new(CardinalityFeedback::new());
        let model = CostModel::new(&fed).with_feedback(fb.clone());
        assert!((model.estimate_physical(&plan).unwrap().rows - 2.0).abs() < 1e-9);
        // After observing that this exact subtree actually produced 8 rows,
        // the corrected estimate follows the learned ratio.
        fb.observe(CardinalityFeedback::node_key(&plan), base.rows, 8.0);
        let corrected = model.estimate_physical(&plan).unwrap();
        assert!((corrected.rows - 8.0).abs() < 1e-9, "rows={}", corrected.rows);
    }

    #[test]
    fn aggregate_rows_shrink() {
        let fed = fed_with_customers(100);
        let model = CostModel::new(&fed);
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan(&fed, vec![])),
            group_by: vec![Expr::qcol("c", "region")],
            aggs: vec![],
        };
        let rows = model.rows(&agg).unwrap();
        assert!(rows < 100.0);
        let global = LogicalPlan::Aggregate {
            input: Box::new(scan(&fed, vec![])),
            group_by: vec![],
            aggs: vec![],
        };
        assert!((model.rows(&global).unwrap() - 1.0).abs() < 1e-9);
    }
}
