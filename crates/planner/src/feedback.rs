//! Cross-query cardinality feedback.
//!
//! The observability layer measures estimated-vs-actual rows for every
//! executed operator (PR 2's `EXPLAIN ANALYZE` instrumentation). This module
//! folds those deltas into a store keyed by *plan-node fingerprint* — the
//! FNV-1a hash of the operator subtree's normalized display text — so the
//! cost model learns corrected cardinalities across queries: the next query
//! containing the same subtree is estimated with the observed ratio applied.
//!
//! The feedback loop is deliberately conservative:
//!
//! - corrections are exponentially smoothed (`ALPHA`) so one outlier
//!   execution does not whipsaw the planner;
//! - ratios are clamped to `[MIN_RATIO, MAX_RATIO]` so a degenerate
//!   observation (estimate ~0, huge actual) cannot produce unbounded
//!   corrections;
//! - a node with no recorded feedback is returned unchanged, so an empty
//!   store makes the model behave exactly as before (existing cost tests
//!   and plans are unaffected until something calls
//!   [`CardinalityFeedback::observe`]).
//!
//! Corrections compound naturally: [`crate::CostModel`] estimates bottom-up,
//! so a corrected child cardinality flows into every ancestor's estimate
//! even when the ancestors themselves have no feedback entry.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::physical::PhysicalPlan;

/// Exponential-smoothing weight for new observations.
const ALPHA: f64 = 0.5;
/// Clamp bounds for the actual/estimated ratio of a single observation.
const MIN_RATIO: f64 = 1.0 / 128.0;
const MAX_RATIO: f64 = 128.0;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a plan node's display text. Same constants as the query
/// log's statement fingerprint (`eii-obs`), duplicated here because the
/// planner sits below the observability crate in the dependency order.
pub fn plan_fingerprint(text: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[derive(Debug, Clone, Copy)]
struct FeedbackEntry {
    /// Smoothed actual/estimated row ratio.
    ratio: f64,
    /// Number of folded observations.
    observations: u64,
}

/// Smoothed per-plan-node cardinality corrections, shared between the
/// telemetry collector (writer) and the cost model (reader).
#[derive(Debug, Default)]
pub struct CardinalityFeedback {
    entries: Mutex<HashMap<u64, FeedbackEntry>>,
}

impl CardinalityFeedback {
    /// Empty store: every correction is 1.0 until something observes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stable feedback key for a physical operator: the fingerprint of its
    /// subtree display, so structurally identical subtrees share corrections
    /// across queries.
    pub fn node_key(plan: &PhysicalPlan) -> u64 {
        plan_fingerprint(&plan.display())
    }

    /// Fold one est-vs-actual measurement into the store. Estimates at or
    /// below zero carry no usable ratio and are skipped.
    pub fn observe(&self, key: u64, est_rows: f64, actual_rows: f64) {
        if est_rows.is_nan() || est_rows <= 0.0 || !actual_rows.is_finite() {
            return;
        }
        let ratio = (actual_rows.max(0.0) / est_rows).clamp(MIN_RATIO, MAX_RATIO);
        let mut entries = self.entries.lock().expect("feedback lock poisoned");
        entries
            .entry(key)
            .and_modify(|e| {
                e.ratio = (1.0 - ALPHA) * e.ratio + ALPHA * ratio;
                e.observations += 1;
            })
            .or_insert(FeedbackEntry {
                ratio,
                observations: 1,
            });
    }

    /// The smoothed correction ratio for a node, if any execution of the
    /// same subtree has been observed.
    pub fn correction(&self, key: u64) -> Option<f64> {
        self.entries
            .lock()
            .expect("feedback lock poisoned")
            .get(&key)
            .map(|e| e.ratio)
    }

    /// Apply the stored correction to an estimated row count; identity when
    /// the node has never been observed.
    pub fn corrected_rows(&self, key: u64, est_rows: f64) -> f64 {
        match self.correction(key) {
            Some(ratio) => (est_rows * ratio).max(0.0),
            None => est_rows,
        }
    }

    /// Number of distinct plan-node fingerprints with feedback.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("feedback lock poisoned").len()
    }

    /// True when no observation has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total folded observations across all keys (telemetry).
    pub fn observations(&self) -> u64 {
        self.entries
            .lock()
            .expect("feedback lock poisoned")
            .values()
            .map(|e| e.observations)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_matches_obs_constants() {
        // Same FNV-1a parameters as eii-obs::fingerprint64: empty input
        // hashes to the offset basis, and the function is deterministic.
        assert_eq!(plan_fingerprint(""), FNV_OFFSET);
        assert_eq!(plan_fingerprint("scan"), plan_fingerprint("scan"));
        assert_ne!(plan_fingerprint("scan"), plan_fingerprint("Scan"));
    }

    #[test]
    fn unobserved_nodes_are_identity() {
        let fb = CardinalityFeedback::new();
        assert!(fb.is_empty());
        assert_eq!(fb.correction(7), None);
        assert!((fb.corrected_rows(7, 42.0) - 42.0).abs() < 1e-12);
    }

    #[test]
    fn observations_smooth_toward_actual_ratio() {
        let fb = CardinalityFeedback::new();
        // Estimated 10, saw 40 -> first ratio is 4.0 exactly.
        fb.observe(1, 10.0, 40.0);
        assert!((fb.correction(1).unwrap() - 4.0).abs() < 1e-12);
        // A second identical observation keeps the ratio at 4.0.
        fb.observe(1, 10.0, 40.0);
        assert!((fb.correction(1).unwrap() - 4.0).abs() < 1e-12);
        // Now the node behaves as estimated: ratio decays halfway to 1.0.
        fb.observe(1, 10.0, 10.0);
        assert!((fb.correction(1).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(fb.observations(), 3);
    }

    #[test]
    fn degenerate_observations_are_clamped_or_skipped() {
        let fb = CardinalityFeedback::new();
        fb.observe(1, 0.0, 1_000_000.0); // unusable estimate: skipped
        assert!(fb.is_empty());
        fb.observe(2, 1e-9, 1_000_000.0); // absurd ratio: clamped
        assert!((fb.correction(2).unwrap() - MAX_RATIO).abs() < 1e-12);
        fb.observe(3, 1_000_000.0, 0.0); // empty actual: clamped below
        assert!((fb.correction(3).unwrap() - MIN_RATIO).abs() < 1e-12);
    }
}
