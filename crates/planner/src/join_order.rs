//! Greedy cost-based join ordering.
//!
//! Inner/cross join regions are flattened into (relations, predicate pool),
//! then rebuilt left-deep: start from the smallest estimated relation and
//! repeatedly join the relation producing the smallest estimated
//! intermediate result, strongly preferring connected (predicate-linked)
//! relations over Cartesian products. Carey's E4 experiment contrasts this
//! with hand-written fixed orders.

use eii_data::{Result, Schema};
use eii_expr::{conjoin, Expr};
use eii_federation::Federation;
use eii_sql::JoinKind;

use crate::cost::CostModel;
use crate::logical::LogicalPlan;

/// Reorder every inner-join region in the plan.
pub fn reorder_joins(plan: LogicalPlan, fed: &Federation) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Join {
            kind: JoinKind::Inner | JoinKind::Cross,
            ..
        } => {
            let mut leaves = Vec::new();
            let mut preds = Vec::new();
            flatten(plan, &mut leaves, &mut preds)?;
            // Reorder inside each leaf too (joins under aliases/aggregates).
            let leaves = leaves
                .into_iter()
                .map(|l| reorder_children(l, fed))
                .collect::<Result<Vec<_>>>()?;
            rebuild(leaves, preds, fed)
        }
        other => reorder_children(other, fed),
    }
}

/// Recurse into children without treating this node as a join region root.
fn reorder_children(plan: LogicalPlan, fed: &Federation) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(reorder_joins(*input, fed)?),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(reorder_joins(*input, fed)?),
            exprs,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => LogicalPlan::Join {
            left: Box::new(reorder_joins(*left, fed)?),
            right: Box::new(reorder_joins(*right, fed)?),
            kind,
            on,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(reorder_joins(*input, fed)?),
            group_by,
            aggs,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(reorder_joins(*input, fed)?),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(reorder_joins(*input, fed)?),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(reorder_joins(*input, fed)?),
            n,
        },
        LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(|p| reorder_joins(p, fed))
                .collect::<Result<Vec<_>>>()?,
        },
        LogicalPlan::Alias { input, alias } => LogicalPlan::Alias {
            input: Box::new(reorder_joins(*input, fed)?),
            alias,
        },
        leaf => leaf,
    })
}

/// Flatten a maximal inner/cross join region.
fn flatten(
    plan: LogicalPlan,
    leaves: &mut Vec<LogicalPlan>,
    preds: &mut Vec<Expr>,
) -> Result<()> {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            kind: JoinKind::Inner | JoinKind::Cross,
            on,
        } => {
            if let Some(on) = on {
                preds.extend(eii_expr::conjuncts(&on));
            }
            flatten(*left, leaves, preds)?;
            flatten(*right, leaves, preds)?;
            Ok(())
        }
        other => {
            leaves.push(other);
            Ok(())
        }
    }
}

fn resolves_in(expr: &Expr, schema: &Schema) -> bool {
    eii_expr::referenced_columns(expr)
        .iter()
        .all(|c| schema.index_of(c.relation.as_deref(), &c.name).is_ok())
}

/// Rebuild a left-deep tree greedily.
fn rebuild(
    leaves: Vec<LogicalPlan>,
    mut pool: Vec<Expr>,
    fed: &Federation,
) -> Result<LogicalPlan> {
    let model = CostModel::new(fed);
    if leaves.len() == 1 {
        let plan = leaves.into_iter().next().expect("len checked");
        return Ok(wrap_pool(plan, pool));
    }

    let mut remaining: Vec<(LogicalPlan, f64)> = leaves
        .into_iter()
        .map(|l| {
            let rows = model.rows(&l).unwrap_or(1000.0);
            (l, rows)
        })
        .collect();

    // Start with the smallest relation.
    let start = remaining
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .map(|(i, _)| i)
        .expect("non-empty");
    let (mut current, _) = remaining.swap_remove(start);
    let mut current_schema = current.schema()?;

    while !remaining.is_empty() {
        let mut best: Option<(usize, f64, bool)> = None; // (idx, est rows, connected)
        for (i, (cand, _)) in remaining.iter().enumerate() {
            let cand_schema = cand.schema()?;
            let combined = current_schema.join(&cand_schema);
            let connecting: Vec<&Expr> = pool
                .iter()
                .filter(|p| {
                    resolves_in(p, &combined)
                        && !resolves_in(p, &current_schema)
                        && !resolves_in(p, &cand_schema)
                })
                .collect();
            let connected = !connecting.is_empty();
            let on = conjoin(connecting.into_iter().cloned().collect());
            let trial = LogicalPlan::Join {
                left: Box::new(current.clone()),
                right: Box::new(cand.clone()),
                kind: if on.is_some() {
                    JoinKind::Inner
                } else {
                    JoinKind::Cross
                },
                on,
            };
            let est = model.rows(&trial).unwrap_or(f64::MAX);
            let better = match &best {
                None => true,
                Some((_, best_est, best_conn)) => {
                    // Connected joins always beat Cartesian products.
                    (connected && !best_conn) || (connected == *best_conn && est < *best_est)
                }
            };
            if better {
                best = Some((i, est, connected));
            }
        }
        let (idx, _, _) = best.expect("remaining non-empty");
        let (next, _) = remaining.swap_remove(idx);
        let next_schema = next.schema()?;
        let combined = current_schema.join(&next_schema);
        // Attach every pool predicate that now resolves.
        let (attach, rest): (Vec<Expr>, Vec<Expr>) = pool
            .into_iter()
            .partition(|p| resolves_in(p, &combined));
        pool = rest;
        let on = conjoin(attach);
        current = LogicalPlan::Join {
            left: Box::new(current),
            right: Box::new(next),
            kind: if on.is_some() {
                JoinKind::Inner
            } else {
                JoinKind::Cross
            },
            on,
        };
        current_schema = std::sync::Arc::new(combined);
    }
    Ok(wrap_pool(current, pool))
}

fn wrap_pool(plan: LogicalPlan, pool: Vec<Expr>) -> LogicalPlan {
    match conjoin(pool) {
        Some(p) => LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: p,
        },
        None => plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::PlanBuilder;
    use crate::config::PlannerConfig;
    use crate::rules::optimize;
    use eii_catalog::Catalog;
    use eii_data::{row, DataType, Field, SimClock};
    use eii_federation::{LinkProfile, RelationalConnector, WireFormat};
    use eii_sql::parse_query;
    use eii_storage::{Database, TableDef};
    use std::sync::Arc;

    /// Three tables of very different sizes: tiny (4), mid (40), big (400).
    fn setup() -> Federation {
        let fed = Federation::new();
        for (name, table, rows) in [
            ("tiny", "t", 4i64),
            ("mid", "m", 40),
            ("big", "b", 400),
        ] {
            let db = Database::new(name, SimClock::new());
            let schema = Arc::new(eii_data::Schema::new(vec![
                Field::new("id", DataType::Int).not_null(),
                Field::new("k", DataType::Int),
            ]));
            let t = db
                .create_table(TableDef::new(table, schema).with_primary_key(0))
                .unwrap();
            for i in 0..rows {
                t.write().insert(row![i, i % 4]).unwrap();
            }
            fed.register(
                Arc::new(RelationalConnector::new(db)),
                LinkProfile::lan(),
                WireFormat::Native,
            )
            .unwrap();
        }
        fed
    }

    fn leftmost_scan(plan: &LogicalPlan) -> String {
        match plan {
            LogicalPlan::SourceScan { source, .. } => source.clone(),
            other => leftmost_scan(other.children()[0]),
        }
    }

    #[test]
    fn starts_from_smallest_relation() {
        let fed = setup();
        let cat = Catalog::new();
        // Written big-first; the optimizer should start from `tiny`.
        let q = parse_query(
            "SELECT * FROM big.b JOIN mid.m ON b.k = m.k JOIN tiny.t ON m.k = t.k",
        )
        .unwrap();
        let plan = PlanBuilder::new(&cat, &fed).build(&q).unwrap();
        let optimized = optimize(plan, &fed, &PlannerConfig::optimized()).unwrap();
        assert_eq!(
            leftmost_scan(&optimized),
            "tiny",
            "{}",
            optimized.display()
        );
    }

    #[test]
    fn connected_joins_beat_cross_products() {
        let fed = setup();
        let cat = Catalog::new();
        let q = parse_query(
            "SELECT * FROM big.b, tiny.t, mid.m WHERE b.k = m.k AND m.k = t.k",
        )
        .unwrap();
        let plan = PlanBuilder::new(&cat, &fed).build(&q).unwrap();
        let optimized = optimize(plan, &fed, &PlannerConfig::optimized()).unwrap();
        // No cross join should survive: predicates connect everything.
        assert!(
            !optimized.display().contains("CROSS JOIN"),
            "{}",
            optimized.display()
        );
    }

    #[test]
    fn predicates_are_not_lost() {
        let fed = setup();
        let cat = Catalog::new();
        let q = parse_query(
            "SELECT * FROM big.b, tiny.t, mid.m WHERE b.k = m.k AND m.k = t.k AND b.id = t.id",
        )
        .unwrap();
        let plan = PlanBuilder::new(&cat, &fed).build(&q).unwrap();
        let optimized = optimize(plan, &fed, &PlannerConfig::optimized()).unwrap();
        let text = optimized.display();
        for pred in ["b.k = m.k", "m.k = t.k", "b.id = t.id"] {
            assert!(text.contains(pred), "lost predicate {pred}: {text}");
        }
    }

    #[test]
    fn single_table_untouched() {
        let fed = setup();
        let cat = Catalog::new();
        let q = parse_query("SELECT id FROM tiny.t WHERE k = 1").unwrap();
        let plan = PlanBuilder::new(&cat, &fed).build(&q).unwrap();
        let optimized = optimize(plan, &fed, &PlannerConfig::optimized()).unwrap();
        assert!(optimized.display().contains("Scan tiny.t"));
    }
}
