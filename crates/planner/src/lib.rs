//! # eii-planner
//!
//! The federated query planner: "query processing would begin by
//! reformulating a query posed over the virtual schema into queries over the
//! data sources, and then executing it efficiently with an engine that
//! created plans that span multiple data sources and dealt with the
//! limitations and capabilities of each source" (Halevy §1).
//!
//! Pipeline: SQL AST → [`LogicalPlan`] (with GAV view unfolding against the
//! catalog) → rewrite rules (constant folding, predicate pushdown, projection
//! pruning) → join ordering → [`PhysicalPlan`] (source decomposition into
//! component [`eii_federation::SourceQuery`]s, join-strategy and assembly-
//! site selection) → cost prediction.
//!
//! Every optimization is individually switchable through [`PlannerConfig`] —
//! that is what the paper's ablation experiments (E3, E4, E11) toggle.

pub mod build;
pub mod config;
pub mod cost;
pub mod feedback;
pub mod join_order;
pub mod logical;
pub mod maintain;
pub mod physical;
pub mod rewrite;
pub mod rules;
pub(crate) mod util;

pub use build::PlanBuilder;
pub use config::PlannerConfig;
pub use cost::{CostModel, PlanEstimate};
pub use feedback::{plan_fingerprint, CardinalityFeedback};
pub use logical::{AggItem, LogicalPlan};
pub use maintain::{
    derive_maintenance_plan, FallbackReason, MaintenanceDecision, MaintenancePlan,
};
pub use physical::{JoinSite, PhysicalPlan, PhysicalPlanner};
pub use rewrite::{rewrite_matviews, rewrite_matviews_with_budget, MatViewDef};
pub use rules::optimize;

use eii_catalog::Catalog;
use eii_data::Result;
use eii_federation::Federation;
use eii_sql::SetQuery;

/// One-stop planning: SQL query AST → optimized physical plan.
pub fn plan_query(
    query: &SetQuery,
    catalog: &Catalog,
    federation: &Federation,
    config: &PlannerConfig,
) -> Result<PhysicalPlan> {
    plan_query_with_views(query, catalog, federation, config, &[])
}

/// Like [`plan_query`], but after rule-based optimization the plan is also
/// matched against the given materialized-view definitions ("answering
/// queries using views") when [`PlannerConfig::rewrite_matviews`] is on.
/// Subtrees a view can answer more cheaply become
/// [`LogicalPlan::MatViewScan`] nodes served from the local store.
pub fn plan_query_with_views(
    query: &SetQuery,
    catalog: &Catalog,
    federation: &Federation,
    config: &PlannerConfig,
    views: &[MatViewDef],
) -> Result<PhysicalPlan> {
    let logical = PlanBuilder::new(catalog, federation).build(query)?;
    let logical = optimize(logical, federation, config)?;
    let logical = if config.rewrite_matviews && !views.is_empty() {
        rewrite_matviews(logical, views, federation)?
    } else {
        logical
    };
    PhysicalPlanner::new(federation, config).create(logical)
}
