//! The logical relational algebra the optimizer works on.

use std::fmt;
use std::sync::Arc;

use eii_data::{DataType, EiiError, Field, Result, Row, Schema, SchemaRef};
use eii_expr::{infer_type, AggFunc, Expr};
use eii_sql::JoinKind;

/// One aggregate computation inside an [`LogicalPlan::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    pub func: AggFunc,
    /// `None` only for `COUNT(*)`.
    pub arg: Option<Expr>,
    pub distinct: bool,
    /// Output column name.
    pub name: String,
}

impl AggItem {
    /// Output type of the aggregate given the input schema.
    pub fn output_type(&self, input: &Schema) -> Result<DataType> {
        Ok(match self.func {
            AggFunc::Count | AggFunc::CountStar => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                let arg = self.arg.as_ref().ok_or_else(|| {
                    EiiError::Plan(format!("{} requires an argument", self.func.name()))
                })?;
                infer_type(arg, input)?.unwrap_or(DataType::Int)
            }
        })
    }
}

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of one table at one federated source. `alias` qualifies the
    /// output columns; `pushed_filters` and `projection` are *table-local*
    /// (unqualified) and filled in by the pushdown rules.
    SourceScan {
        source: String,
        table: String,
        alias: String,
        /// The table's native schema (unqualified).
        base_schema: SchemaRef,
        /// Filters the source will evaluate (unqualified column refs).
        pushed_filters: Vec<Expr>,
        /// Columns the source will return, or `None` for all.
        projection: Option<Vec<String>>,
        /// Row cap the source will apply after its filters, when its
        /// capabilities allow (`LIMIT` pushdown).
        limit: Option<usize>,
    },
    /// Literal rows (`SELECT 1`).
    Values { schema: SchemaRef, rows: Vec<Row> },
    /// A scan of a local materialized view that the rewrite pass
    /// substituted for an equivalent (or containing) federated subtree
    /// because the cost model preferred it. Carries both sides of that
    /// decision so EXPLAIN can show the chosen local cost next to the
    /// rejected federated one.
    MatViewScan {
        /// Registered view name.
        name: String,
        /// Output schema, qualified like the subtree this scan replaced.
        schema: SchemaRef,
        /// Compensating predicates the query pushed beyond the view's
        /// definition, evaluated over the *full* materialization (which may
        /// hold columns the output projects away) before projecting.
        filters: Vec<Expr>,
        /// Compensating row cap applied after the filters.
        limit: Option<usize>,
        /// Cost model's estimate for reading the local materialization
        /// (the chosen alternative).
        local: crate::cost::PlanEstimate,
        /// Cost model's estimate for the federated subtree this scan
        /// replaced (the rejected alternative).
        federated: crate::cost::PlanEstimate,
        /// Estimated bytes per source the rewrite avoids shipping.
        saved: Vec<(String, f64)>,
    },
    /// Row filter.
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// Projection with output names.
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<(Expr, String)>,
    },
    /// Join.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        kind: JoinKind,
        on: Option<Expr>,
    },
    /// Grouped aggregation.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<Expr>,
        aggs: Vec<AggItem>,
    },
    /// Duplicate elimination over full rows.
    Distinct { input: Box<LogicalPlan> },
    /// Sort by output-schema expressions.
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<(Expr, bool)>,
    },
    /// Row-count limit.
    Limit { input: Box<LogicalPlan>, n: usize },
    /// Bag union of compatible inputs.
    UnionAll { inputs: Vec<LogicalPlan> },
    /// Re-qualify the input's columns under a new relation name (a view or
    /// subquery given an alias in FROM).
    Alias {
        input: Box<LogicalPlan>,
        alias: String,
    },
}

impl LogicalPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> Result<SchemaRef> {
        match self {
            LogicalPlan::SourceScan {
                alias,
                base_schema,
                projection,
                ..
            } => {
                let qualified = base_schema.qualified(alias);
                match projection {
                    None => Ok(Arc::new(qualified)),
                    Some(cols) => {
                        let fields = cols
                            .iter()
                            .map(|c| {
                                let i = base_schema.index_of(None, c)?;
                                Ok(qualified.field(i).clone())
                            })
                            .collect::<Result<Vec<_>>>()?;
                        Ok(Arc::new(Schema::new(fields)))
                    }
                }
            }
            LogicalPlan::Values { schema, .. }
            | LogicalPlan::MatViewScan { schema, .. } => Ok(schema.clone()),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema()?;
                let fields = exprs
                    .iter()
                    .map(|(e, name)| {
                        let ty = infer_type(e, &in_schema)?.unwrap_or(DataType::Str);
                        Ok(Field::new(name.clone(), ty))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Arc::new(Schema::new(fields)))
            }
            LogicalPlan::Join {
                left, right, kind, ..
            } => {
                let l = left.schema()?;
                if matches!(kind, JoinKind::Semi | JoinKind::Anti) {
                    // Semi/anti joins filter the left side; right columns
                    // never surface.
                    return Ok(l);
                }
                let r = right.schema()?;
                let mut joined = l.join(&r);
                if *kind == JoinKind::Left {
                    // Right side becomes nullable.
                    let fields = joined
                        .fields()
                        .iter()
                        .enumerate()
                        .map(|(i, f)| {
                            let mut f = f.clone();
                            if i >= l.len() {
                                f.nullable = true;
                            }
                            f
                        })
                        .collect();
                    joined = Schema::new(fields);
                }
                Ok(Arc::new(joined))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
                for g in group_by {
                    let ty = infer_type(g, &in_schema)?.unwrap_or(DataType::Str);
                    fields.push(Field::new(g.output_name(), ty));
                }
                for a in aggs {
                    fields.push(Field::new(a.name.clone(), a.output_type(&in_schema)?));
                }
                Ok(Arc::new(Schema::new(fields)))
            }
            LogicalPlan::UnionAll { inputs } => {
                let first = inputs
                    .first()
                    .ok_or_else(|| EiiError::Plan("empty UNION".into()))?
                    .schema()?;
                for other in &inputs[1..] {
                    let s = other.schema()?;
                    if s.len() != first.len() {
                        return Err(EiiError::Plan(format!(
                            "UNION ALL branches have different widths: {} vs {}",
                            first.len(),
                            s.len()
                        )));
                    }
                    for (a, b) in first.fields().iter().zip(s.fields()) {
                        if a.data_type.unify(b.data_type).is_none() {
                            return Err(EiiError::Plan(format!(
                                "UNION ALL column '{}' mixes {} and {}",
                                a.name, a.data_type, b.data_type
                            )));
                        }
                    }
                }
                // Branch qualifiers differ; the union's columns are
                // addressable by bare name only.
                let fields = first
                    .fields()
                    .iter()
                    .map(|f| {
                        let mut f = f.clone();
                        f.relation = None;
                        f
                    })
                    .collect();
                Ok(Arc::new(Schema::new(fields)))
            }
            LogicalPlan::Alias { input, alias } => {
                Ok(Arc::new(input.schema()?.qualified(alias)))
            }
        }
    }

    /// Children of this node, for generic traversal.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::SourceScan { .. }
            | LogicalPlan::Values { .. }
            | LogicalPlan::MatViewScan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Alias { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::UnionAll { inputs } => inputs.iter().collect(),
        }
    }

    /// Render the plan as an indented tree (EXPLAIN output).
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.display_into(0, &mut out);
        out
    }

    fn display_into(&self, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let line = match self {
            LogicalPlan::SourceScan {
                source,
                table,
                alias,
                pushed_filters,
                projection,
                limit,
                ..
            } => {
                let mut s = format!("Scan {source}.{table} AS {alias}");
                if let Some(p) = projection {
                    s.push_str(&format!(" cols=[{}]", p.join(", ")));
                }
                if !pushed_filters.is_empty() {
                    let preds: Vec<String> =
                        pushed_filters.iter().map(ToString::to_string).collect();
                    s.push_str(&format!(" pushed=[{}]", preds.join(" AND ")));
                }
                if let Some(n) = limit {
                    s.push_str(&format!(" limit={n}"));
                }
                s
            }
            LogicalPlan::Values { rows, .. } => format!("Values ({} rows)", rows.len()),
            LogicalPlan::MatViewScan {
                name,
                filters,
                limit,
                local,
                federated,
                ..
            } => {
                let mut s = format!(
                    "MatViewScan {name} [MATVIEW] (local sim={:.1}ms bytes=0 | \
                     rejected federated sim={:.1}ms bytes={:.0})",
                    local.sim_ms, federated.sim_ms, federated.bytes
                );
                if !filters.is_empty() {
                    let preds: Vec<String> = filters.iter().map(ToString::to_string).collect();
                    s.push_str(&format!(" compensate=[{}]", preds.join(" AND ")));
                }
                if let Some(n) = limit {
                    s.push_str(&format!(" limit={n}"));
                }
                s
            }
            LogicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            LogicalPlan::Project { exprs, .. } => {
                let items: Vec<String> = exprs
                    .iter()
                    .map(|(e, n)| format!("{e} AS {n}"))
                    .collect();
                format!("Project [{}]", items.join(", "))
            }
            LogicalPlan::Join { kind, on, .. } => match on {
                Some(c) => format!("{kind} ON {c}"),
                None => format!("{kind}"),
            },
            LogicalPlan::Aggregate {
                group_by, aggs, ..
            } => {
                let g: Vec<String> = group_by.iter().map(ToString::to_string).collect();
                let a: Vec<String> = aggs.iter().map(|x| x.name.clone()).collect();
                format!("Aggregate group=[{}] aggs=[{}]", g.join(", "), a.join(", "))
            }
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::Sort { keys, .. } => {
                let k: Vec<String> = keys
                    .iter()
                    .map(|(e, asc)| format!("{e} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                format!("Sort [{}]", k.join(", "))
            }
            LogicalPlan::Limit { n, .. } => format!("Limit {n}"),
            LogicalPlan::UnionAll { .. } => "UnionAll".to_string(),
            LogicalPlan::Alias { alias, .. } => format!("Alias {alias}"),
        };
        out.push_str(&indent);
        out.push_str(&line);
        out.push('\n');
        for c in self.children() {
            c.display_into(depth + 1, out);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(alias: &str) -> LogicalPlan {
        LogicalPlan::SourceScan {
            source: "crm".into(),
            table: "customers".into(),
            alias: alias.into(),
            base_schema: Arc::new(Schema::new(vec![
                Field::new("id", DataType::Int).not_null(),
                Field::new("name", DataType::Str),
            ])),
            pushed_filters: vec![],
            projection: None,
            limit: None,
        }
    }

    #[test]
    fn scan_schema_is_alias_qualified() {
        let s = scan("c").schema().unwrap();
        assert_eq!(s.field(0).relation.as_deref(), Some("c"));
        assert_eq!(s.index_of(Some("c"), "id").unwrap(), 0);
    }

    #[test]
    fn scan_projection_narrows_schema() {
        let mut p = scan("c");
        if let LogicalPlan::SourceScan { projection, .. } = &mut p {
            *projection = Some(vec!["name".into()]);
        }
        let s = p.schema().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.field(0).name, "name");
    }

    #[test]
    fn join_schema_concats_and_left_join_nullifies() {
        let j = LogicalPlan::Join {
            left: Box::new(scan("a")),
            right: Box::new(scan("b")),
            kind: JoinKind::Left,
            on: Some(Expr::qcol("a", "id").eq(Expr::qcol("b", "id"))),
        };
        let s = j.schema().unwrap();
        assert_eq!(s.len(), 4);
        assert!(!s.field(0).nullable, "left side keeps constraints");
        assert!(s.field(2).nullable, "right side nullable under LEFT JOIN");
    }

    #[test]
    fn project_schema_uses_inferred_types() {
        let p = LogicalPlan::Project {
            input: Box::new(scan("c")),
            exprs: vec![
                (Expr::qcol("c", "id"), "id".into()),
                (
                    Expr::qcol("c", "id").binary(eii_expr::BinaryOp::Multiply, Expr::lit(2i64)),
                    "double_id".into(),
                ),
            ],
        };
        let s = p.schema().unwrap();
        assert_eq!(s.field(1).data_type, DataType::Int);
    }

    #[test]
    fn aggregate_schema() {
        let a = LogicalPlan::Aggregate {
            input: Box::new(scan("c")),
            group_by: vec![Expr::qcol("c", "name")],
            aggs: vec![
                AggItem {
                    func: AggFunc::CountStar,
                    arg: None,
                    distinct: false,
                    name: "n".into(),
                },
                AggItem {
                    func: AggFunc::Avg,
                    arg: Some(Expr::qcol("c", "id")),
                    distinct: false,
                    name: "avg_id".into(),
                },
            ],
        };
        let s = a.schema().unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(1).data_type, DataType::Int);
        assert_eq!(s.field(2).data_type, DataType::Float);
    }

    #[test]
    fn union_width_mismatch_rejected() {
        let narrow = LogicalPlan::Project {
            input: Box::new(scan("a")),
            exprs: vec![(Expr::qcol("a", "id"), "id".into())],
        };
        let u = LogicalPlan::UnionAll {
            inputs: vec![scan("a"), narrow],
        };
        assert_eq!(u.schema().unwrap_err().kind(), "plan");
    }

    #[test]
    fn display_renders_tree() {
        let f = LogicalPlan::Filter {
            input: Box::new(scan("c")),
            predicate: Expr::qcol("c", "id").gt(Expr::lit(5i64)),
        };
        let text = f.display();
        assert!(text.contains("Filter (c.id > 5)"));
        assert!(text.contains("  Scan crm.customers AS c"));
    }
}
