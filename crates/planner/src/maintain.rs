//! Derive a **maintenance plan** for incremental view maintenance.
//!
//! Given a view's optimized [`LogicalPlan`], decide whether the view can be
//! maintained incrementally by pushing insert/delete deltas from the base
//! tables' change logs through its operators (`eii-matview`'s `ivm` module
//! executes that propagation), or must fall back to full recompute — and if
//! so, *why*, as a typed [`FallbackReason`] that surfaces in metrics, tests,
//! and `docs/ivm.md`'s fallback matrix.
//!
//! The delta algebra is weighted (z-set) bag semantics: every delta row
//! carries an integer weight (+1 insert, −1 delete; an update is a retract
//! plus an insert). An operator is incrementalizable when it commutes with
//! that weighted union — filter, project, alias, union-all, inner join, and
//! the mergeable aggregates. Everything order- or set-sensitive (sort,
//! limit, distinct), null-introducing (outer joins), or lossy under
//! retraction (float SUM/AVG, DISTINCT aggregates) falls back.

use eii_expr::{infer_type, AggFunc};
use eii_sql::JoinKind;

use eii_data::DataType;

use crate::logical::LogicalPlan;

/// Why a view cannot be maintained incrementally and must fall back to
/// full recompute on every refresh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FallbackReason {
    /// `DISTINCT` requires per-row multiplicity bookkeeping over the whole
    /// output; not implemented incrementally.
    Distinct,
    /// Sorted output is order-sensitive; deltas carry no order.
    Sort,
    /// `LIMIT` is non-monotone: a retraction below the cutoff changes which
    /// rows are visible.
    Limit,
    /// The scan pushes a `LIMIT` down to the source, so the scanned rows
    /// are not a deterministic function of the table's contents.
    ScanLimit,
    /// Only inner joins distribute over weighted union; outer/semi/anti
    /// joins introduce or suppress rows based on global match state.
    UnsupportedJoin(JoinKind),
    /// `DISTINCT` aggregates need the full value multiset per group.
    DistinctAggregate(String),
    /// SUM/AVG over floats: retraction by subtraction is lossy under
    /// floating-point rounding, so byte-identity with recompute cannot be
    /// guaranteed.
    FloatAggregate(String),
    /// Constant `VALUES` inputs have no change log to propagate from.
    Values,
    /// The plan reads another materialized view; view-over-view maintenance
    /// is not chained.
    ViewOverView,
    /// A base table's connector exposes no change log to propagate deltas
    /// from. The plan walk cannot see connector capabilities, so this
    /// reason is produced by the matview manager's definition-time CDC
    /// probe, not by [`derive_maintenance_plan`]; the payload is the
    /// qualified `source.table` name.
    NoChangeLog(String),
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::Distinct => write!(f, "DISTINCT requires full-output multiplicity"),
            FallbackReason::Sort => write!(f, "ORDER BY is order-sensitive"),
            FallbackReason::Limit => write!(f, "LIMIT is non-monotone under retraction"),
            FallbackReason::ScanLimit => write!(f, "scan-level LIMIT pushdown is nondeterministic"),
            FallbackReason::UnsupportedJoin(kind) => {
                write!(f, "{kind} does not distribute over deltas")
            }
            FallbackReason::DistinctAggregate(name) => {
                write!(f, "DISTINCT aggregate {name} needs the full value multiset")
            }
            FallbackReason::FloatAggregate(name) => {
                write!(f, "float {name} is lossy under retraction")
            }
            FallbackReason::Values => write!(f, "constant VALUES input has no change log"),
            FallbackReason::ViewOverView => {
                write!(f, "view-over-view maintenance is not chained")
            }
            FallbackReason::NoChangeLog(table) => {
                write!(f, "source table {table} exposes no change log")
            }
        }
    }
}

/// A validated maintenance plan: the view's operators all distribute over
/// deltas, and these are the base tables whose change logs feed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintenancePlan {
    /// Qualified `source.table` names the view reads, deduplicated and
    /// sorted — one change-log watermark is tracked per entry.
    pub base_tables: Vec<String>,
}

/// The planner's verdict on how a view is kept fresh.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenanceDecision {
    /// Every operator is incrementalizable: maintain by delta propagation.
    Incremental(MaintenancePlan),
    /// At least one operator is not: refresh by full recompute.
    FullRecompute(FallbackReason),
}

impl MaintenanceDecision {
    /// The fallback reason, when the decision is full recompute.
    pub fn fallback_reason(&self) -> Option<&FallbackReason> {
        match self {
            MaintenanceDecision::Incremental(_) => None,
            MaintenanceDecision::FullRecompute(reason) => Some(reason),
        }
    }
}

/// Walk a view's optimized logical plan and decide whether it can be
/// maintained incrementally; see the module docs for the algebra.
pub fn derive_maintenance_plan(plan: &LogicalPlan) -> MaintenanceDecision {
    let mut tables = Vec::new();
    match validate(plan, &mut tables) {
        Ok(()) => {
            tables.sort();
            tables.dedup();
            MaintenanceDecision::Incremental(MaintenancePlan {
                base_tables: tables,
            })
        }
        Err(reason) => MaintenanceDecision::FullRecompute(reason),
    }
}

fn validate(plan: &LogicalPlan, tables: &mut Vec<String>) -> Result<(), FallbackReason> {
    match plan {
        LogicalPlan::SourceScan {
            source,
            table,
            limit,
            ..
        } => {
            if limit.is_some() {
                return Err(FallbackReason::ScanLimit);
            }
            tables.push(format!("{source}.{table}"));
            Ok(())
        }
        LogicalPlan::Values { .. } => Err(FallbackReason::Values),
        LogicalPlan::MatViewScan { .. } => Err(FallbackReason::ViewOverView),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Alias { input, .. } => validate(input, tables),
        LogicalPlan::Join {
            left, right, kind, ..
        } => {
            if *kind != JoinKind::Inner {
                return Err(FallbackReason::UnsupportedJoin(*kind));
            }
            validate(left, tables)?;
            validate(right, tables)
        }
        LogicalPlan::Aggregate { input, aggs, .. } => {
            let in_schema = input.schema().ok();
            for item in aggs {
                if item.distinct {
                    return Err(FallbackReason::DistinctAggregate(item.name.clone()));
                }
                if matches!(item.func, AggFunc::Sum | AggFunc::Avg) {
                    let arg_ty = match (&item.arg, &in_schema) {
                        (Some(arg), Some(schema)) => infer_type(arg, schema).ok().flatten(),
                        _ => None,
                    };
                    if arg_ty == Some(DataType::Float) {
                        return Err(FallbackReason::FloatAggregate(item.name.clone()));
                    }
                }
            }
            validate(input, tables)
        }
        LogicalPlan::Distinct { .. } => Err(FallbackReason::Distinct),
        LogicalPlan::Sort { .. } => Err(FallbackReason::Sort),
        LogicalPlan::Limit { .. } => Err(FallbackReason::Limit),
        LogicalPlan::UnionAll { inputs } => {
            for input in inputs {
                validate(input, tables)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::AggItem;
    use eii_data::{DataType, Field, Schema};
    use eii_expr::Expr;
    use std::sync::Arc;

    fn scan(source: &str, table: &str) -> LogicalPlan {
        LogicalPlan::SourceScan {
            source: source.into(),
            table: table.into(),
            alias: table.into(),
            base_schema: Arc::new(Schema::new(vec![
                Field::new("id", DataType::Int).not_null(),
                Field::new("qty", DataType::Int),
                Field::new("price", DataType::Float),
            ])),
            pushed_filters: vec![],
            projection: None,
            limit: None,
        }
    }

    #[test]
    fn filter_project_join_over_scans_is_incremental() {
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(LogicalPlan::Filter {
                    input: Box::new(scan("crm", "customers")),
                    predicate: Expr::qcol("customers", "id").gt(Expr::lit(5i64)),
                }),
                right: Box::new(scan("sales", "orders")),
                kind: JoinKind::Inner,
                on: Some(
                    Expr::qcol("customers", "id").eq(Expr::qcol("orders", "id")),
                ),
            }),
            exprs: vec![(Expr::qcol("customers", "id"), "id".into())],
        };
        match derive_maintenance_plan(&plan) {
            MaintenanceDecision::Incremental(mp) => {
                assert_eq!(
                    mp.base_tables,
                    vec!["crm.customers".to_string(), "sales.orders".to_string()]
                );
            }
            other => panic!("expected incremental, got {other:?}"),
        }
    }

    #[test]
    fn base_tables_deduplicate_self_joins() {
        let plan = LogicalPlan::Join {
            left: Box::new(scan("crm", "customers")),
            right: Box::new(scan("crm", "customers")),
            kind: JoinKind::Inner,
            on: Some(Expr::qcol("customers", "id").eq(Expr::qcol("customers", "id"))),
        };
        match derive_maintenance_plan(&plan) {
            MaintenanceDecision::Incremental(mp) => {
                assert_eq!(mp.base_tables, vec!["crm.customers".to_string()]);
            }
            other => panic!("expected incremental, got {other:?}"),
        }
    }

    #[test]
    fn order_sensitive_operators_fall_back() {
        let sorted = LogicalPlan::Sort {
            input: Box::new(scan("crm", "customers")),
            keys: vec![(Expr::qcol("customers", "id"), true)],
        };
        assert_eq!(
            derive_maintenance_plan(&sorted).fallback_reason(),
            Some(&FallbackReason::Sort)
        );
        let limited = LogicalPlan::Limit {
            input: Box::new(scan("crm", "customers")),
            n: 3,
        };
        assert_eq!(
            derive_maintenance_plan(&limited).fallback_reason(),
            Some(&FallbackReason::Limit)
        );
        let distinct = LogicalPlan::Distinct {
            input: Box::new(scan("crm", "customers")),
        };
        assert_eq!(
            derive_maintenance_plan(&distinct).fallback_reason(),
            Some(&FallbackReason::Distinct)
        );
    }

    #[test]
    fn outer_join_falls_back_inner_does_not() {
        let mk = |kind| LogicalPlan::Join {
            left: Box::new(scan("crm", "customers")),
            right: Box::new(scan("sales", "orders")),
            kind,
            on: Some(Expr::qcol("customers", "id").eq(Expr::qcol("orders", "id"))),
        };
        assert_eq!(
            derive_maintenance_plan(&mk(JoinKind::Left)).fallback_reason(),
            Some(&FallbackReason::UnsupportedJoin(JoinKind::Left))
        );
        assert!(derive_maintenance_plan(&mk(JoinKind::Inner))
            .fallback_reason()
            .is_none());
    }

    #[test]
    fn float_sum_falls_back_int_sum_does_not() {
        let mk = |col: &str| LogicalPlan::Aggregate {
            input: Box::new(scan("sales", "orders")),
            group_by: vec![],
            aggs: vec![AggItem {
                func: AggFunc::Sum,
                arg: Some(Expr::qcol("orders", col)),
                distinct: false,
                name: format!("sum_{col}"),
            }],
        };
        assert_eq!(
            derive_maintenance_plan(&mk("price")).fallback_reason(),
            Some(&FallbackReason::FloatAggregate("sum_price".into()))
        );
        assert!(derive_maintenance_plan(&mk("qty"))
            .fallback_reason()
            .is_none());
    }

    #[test]
    fn distinct_aggregate_and_scan_limit_fall_back() {
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan("sales", "orders")),
            group_by: vec![],
            aggs: vec![AggItem {
                func: AggFunc::Count,
                arg: Some(Expr::qcol("orders", "id")),
                distinct: true,
                name: "n".into(),
            }],
        };
        assert_eq!(
            derive_maintenance_plan(&agg).fallback_reason(),
            Some(&FallbackReason::DistinctAggregate("n".into()))
        );
        let mut limited = scan("sales", "orders");
        if let LogicalPlan::SourceScan { limit, .. } = &mut limited {
            *limit = Some(10);
        }
        assert_eq!(
            derive_maintenance_plan(&limited).fallback_reason(),
            Some(&FallbackReason::ScanLimit)
        );
    }
}
