//! Physical planning: source decomposition, join-strategy selection, bind
//! joins for access-limited sources, and assembly-site selection.
//!
//! "A single query submitted to an EII engine must be decomposed to
//! component queries that are distributed to the data sources, and the
//! results of the component queries must be joined at an assembly site. The
//! assembly site may be a single hub or it may be one of the sources."
//! (Bitton §3)

use std::fmt;

use eii_data::{EiiError, Result, Row, SchemaRef};
use eii_expr::{conjoin, conjuncts, referenced_columns, BinaryOp, Expr};
use eii_federation::{Federation, SourceQuery};
use eii_sql::JoinKind;

use crate::config::PlannerConfig;
use crate::cost::{CostModel, PlanEstimate};
use crate::logical::{AggItem, LogicalPlan};

/// Where a cross-source join's rows are assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinSite {
    /// At the EII server (both inputs ship to the hub).
    Hub,
    /// At a source site (the other input ships there; the result ships to
    /// the hub).
    AtSource(String),
}

impl fmt::Display for JoinSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinSite::Hub => write!(f, "hub"),
            JoinSite::AtSource(s) => write!(f, "@{s}"),
        }
    }
}

/// An executable plan.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// One component query shipped to one source.
    Source {
        source: String,
        query: SourceQuery,
        schema: SchemaRef,
    },
    /// Literal rows.
    Values { schema: SchemaRef, rows: Vec<Row> },
    /// Local scan of a materialized view, substituted by the planner's
    /// rewrite pass for an equivalent federated subtree. The executor
    /// serves it from the matview store; nothing crosses the network.
    MatViewScan {
        /// Registered view name (the executor's store key).
        name: String,
        /// Output schema, qualified like the replaced subtree.
        schema: SchemaRef,
        /// Compensating predicates, evaluated over the full materialization
        /// (it may hold columns the output projects away) before projecting.
        filters: Vec<Expr>,
        /// Compensating row cap applied after the filters.
        limit: Option<usize>,
        /// Chosen alternative: cost of reading the local materialization.
        local: PlanEstimate,
        /// Rejected alternative: cost of executing the replaced subtree
        /// against the federation.
        federated: PlanEstimate,
        /// Estimated bytes per source this scan avoids shipping, for the
        /// ledger's bytes-saved accounting.
        saved: Vec<(String, f64)>,
    },
    /// Assembly-site filter.
    Filter {
        input: Box<PhysicalPlan>,
        predicate: Expr,
        /// Run on the executor's columnar path (selection-vector kernels).
        vectorized: bool,
    },
    /// Assembly-site projection.
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<(Expr, String)>,
        schema: SchemaRef,
        /// Run on the executor's columnar path (typed expression kernels).
        vectorized: bool,
    },
    /// Hash join on equi keys, with optional residual predicate.
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        kind: JoinKind,
        residual: Option<Expr>,
        site: JoinSite,
        parallel: bool,
        schema: SchemaRef,
        /// Run build/probe on the executor's columnar path.
        vectorized: bool,
    },
    /// Nested-loop join (arbitrary condition / cartesian).
    NestedLoopJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        kind: JoinKind,
        on: Option<Expr>,
        parallel: bool,
        schema: SchemaRef,
    },
    /// Bind join: execute the left side, ship its distinct key values to the
    /// right source as bindings, join the returned rows.
    BindJoin {
        left: Box<PhysicalPlan>,
        left_key: Expr,
        source: String,
        /// Component-query template (bindings filled at run time).
        template: SourceQuery,
        bind_column: String,
        right_schema: SchemaRef,
        residual: Option<Expr>,
        schema: SchemaRef,
    },
    /// Hash aggregation.
    Aggregate {
        input: Box<PhysicalPlan>,
        group_by: Vec<Expr>,
        aggs: Vec<AggItem>,
        schema: SchemaRef,
        /// Accumulate over columnar chunks instead of rows.
        vectorized: bool,
    },
    /// Duplicate elimination.
    Distinct { input: Box<PhysicalPlan> },
    /// Sort.
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<(Expr, bool)>,
    },
    /// Limit.
    Limit { input: Box<PhysicalPlan>, n: usize },
    /// Bag union.
    UnionAll {
        inputs: Vec<PhysicalPlan>,
        parallel: bool,
        schema: SchemaRef,
    },
    /// Re-tag the input's schema (alias boundaries).
    Rename {
        input: Box<PhysicalPlan>,
        schema: SchemaRef,
    },
}

impl PhysicalPlan {
    /// Output schema.
    pub fn schema(&self) -> SchemaRef {
        match self {
            PhysicalPlan::Source { schema, .. }
            | PhysicalPlan::Values { schema, .. }
            | PhysicalPlan::MatViewScan { schema, .. }
            | PhysicalPlan::Project { schema, .. }
            | PhysicalPlan::HashJoin { schema, .. }
            | PhysicalPlan::NestedLoopJoin { schema, .. }
            | PhysicalPlan::BindJoin { schema, .. }
            | PhysicalPlan::Aggregate { schema, .. }
            | PhysicalPlan::UnionAll { schema, .. }
            | PhysicalPlan::Rename { schema, .. } => schema.clone(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Short operator name (stable across queries; used for metric names and
    /// operator profiles).
    pub fn label(&self) -> &'static str {
        match self {
            PhysicalPlan::Source { .. } => "Source",
            PhysicalPlan::Values { .. } => "Values",
            PhysicalPlan::MatViewScan { .. } => "MatViewScan",
            PhysicalPlan::Filter { .. } => "Filter",
            PhysicalPlan::Project { .. } => "Project",
            PhysicalPlan::HashJoin { .. } => "HashJoin",
            PhysicalPlan::NestedLoopJoin { .. } => "NestedLoopJoin",
            PhysicalPlan::BindJoin { .. } => "BindJoin",
            PhysicalPlan::Aggregate { .. } => "Aggregate",
            PhysicalPlan::Distinct { .. } => "Distinct",
            PhysicalPlan::Sort { .. } => "Sort",
            PhysicalPlan::Limit { .. } => "Limit",
            PhysicalPlan::UnionAll { .. } => "UnionAll",
            PhysicalPlan::Rename { .. } => "Rename",
        }
    }

    /// Child operators, in the order the executor visits them. A
    /// [`PhysicalPlan::BindJoin`]'s probe side runs inside the operator, so
    /// only its build side appears.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::Source { .. }
            | PhysicalPlan::Values { .. }
            | PhysicalPlan::MatViewScan { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Aggregate { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Rename { input, .. } => vec![input.as_ref()],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. } => {
                vec![left.as_ref(), right.as_ref()]
            }
            PhysicalPlan::BindJoin { left, .. } => vec![left.as_ref()],
            PhysicalPlan::UnionAll { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// One-line description of this operator (no children): the line
    /// [`PhysicalPlan::display`] prints for it, and the line `EXPLAIN
    /// ANALYZE` annotates.
    pub fn describe(&self) -> String {
        match self {
            PhysicalPlan::Source { source, query, .. } => {
                format!("SourceQuery {source}: {}", query.to_sql())
            }
            PhysicalPlan::Values { rows, .. } => format!("Values ({} rows)", rows.len()),
            PhysicalPlan::MatViewScan {
                name,
                filters,
                limit,
                local,
                federated,
                ..
            } => {
                let mut s = format!(
                    "MatViewScan {name} [MATVIEW] (local sim={:.1}ms bytes=0 | \
                     rejected federated sim={:.1}ms bytes={:.0})",
                    local.sim_ms, federated.sim_ms, federated.bytes
                );
                if !filters.is_empty() {
                    let preds: Vec<String> = filters.iter().map(ToString::to_string).collect();
                    s.push_str(&format!(" compensate=[{}]", preds.join(" AND ")));
                }
                if let Some(n) = limit {
                    s.push_str(&format!(" limit={n}"));
                }
                s
            }
            PhysicalPlan::Filter {
                predicate,
                vectorized,
                ..
            } => format!("Filter {predicate}{}", vec_tag(*vectorized)),
            PhysicalPlan::Project {
                exprs, vectorized, ..
            } => {
                let items: Vec<String> =
                    exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                format!("Project [{}]{}", items.join(", "), vec_tag(*vectorized))
            }
            PhysicalPlan::HashJoin {
                left_keys,
                right_keys,
                kind,
                site,
                parallel,
                vectorized,
                ..
            } => {
                let keys: Vec<String> = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(l, r)| format!("{l}={r}"))
                    .collect();
                format!(
                    "HashJoin[{kind}] keys=[{}] site={site}{}{}",
                    keys.join(", "),
                    if *parallel { " parallel" } else { "" },
                    vec_tag(*vectorized)
                )
            }
            PhysicalPlan::NestedLoopJoin { kind, on, .. } => format!(
                "NestedLoopJoin[{kind}]{}",
                on.as_ref().map(|o| format!(" ON {o}")).unwrap_or_default()
            ),
            PhysicalPlan::BindJoin {
                left_key,
                source,
                bind_column,
                ..
            } => format!("BindJoin {left_key} -> {source}.{bind_column}"),
            PhysicalPlan::Aggregate {
                group_by,
                aggs,
                vectorized,
                ..
            } => {
                let g: Vec<String> = group_by.iter().map(ToString::to_string).collect();
                let a: Vec<String> = aggs.iter().map(|x| x.name.clone()).collect();
                format!(
                    "HashAggregate group=[{}] aggs=[{}]{}",
                    g.join(", "),
                    a.join(", "),
                    vec_tag(*vectorized)
                )
            }
            PhysicalPlan::Distinct { .. } => "Distinct".into(),
            PhysicalPlan::Sort { keys, .. } => {
                let k: Vec<String> = keys
                    .iter()
                    .map(|(e, asc)| format!("{e} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                format!("Sort [{}]", k.join(", "))
            }
            PhysicalPlan::Limit { n, .. } => format!("Limit {n}"),
            PhysicalPlan::UnionAll { parallel, .. } => {
                format!("UnionAll{}", if *parallel { " parallel" } else { "" })
            }
            PhysicalPlan::Rename { schema, .. } => format!("Rename {}", schema),
        }
    }

    /// Does this operator join on some condition (equi keys or an `ON`
    /// clause)? False for non-joins and for pure cross products.
    pub fn join_condition_present(&self) -> bool {
        match self {
            PhysicalPlan::HashJoin { left_keys, .. } => !left_keys.is_empty(),
            PhysicalPlan::NestedLoopJoin { on, .. } => on.is_some(),
            PhysicalPlan::BindJoin { .. } => true,
            _ => false,
        }
    }

    /// What this operator pushed down to a source, when it talks to one:
    /// `pushed=[...]` for [`PhysicalPlan::Source`] and
    /// [`PhysicalPlan::BindJoin`], `None` for hub-side operators.
    pub fn pushdown(&self) -> Option<String> {
        let (query, bound) = match self {
            PhysicalPlan::Source { query, .. } => (query, false),
            PhysicalPlan::BindJoin { template, .. } => (template, true),
            _ => return None,
        };
        let mut parts = Vec::new();
        if let Some(p) = &query.projection {
            parts.push(format!("projection:{}", p.len()));
        }
        if !query.filters.is_empty() {
            parts.push(format!("filters:{}", query.filters.len()));
        }
        if let Some(n) = query.limit {
            parts.push(format!("limit:{n}"));
        }
        if bound {
            parts.push("bindings:1".into());
        }
        if parts.is_empty() {
            parts.push("none".into());
        }
        Some(format!("pushed=[{}]", parts.join(" ")))
    }

    /// Indented EXPLAIN rendering.
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.display_into(0, &mut out);
        out
    }

    fn display_into(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.describe());
        out.push('\n');
        for c in self.children() {
            c.display_into(depth + 1, out);
        }
    }
}

/// Creates physical plans from optimized logical plans.
pub struct PhysicalPlanner<'a> {
    federation: &'a Federation,
    config: &'a PlannerConfig,
}

impl<'a> PhysicalPlanner<'a> {
    /// New physical planner.
    pub fn new(federation: &'a Federation, config: &'a PlannerConfig) -> Self {
        PhysicalPlanner { federation, config }
    }

    /// Convert an optimized logical plan.
    pub fn create(&self, plan: LogicalPlan) -> Result<PhysicalPlan> {
        match plan {
            LogicalPlan::SourceScan { .. } => {
                // Access-pattern check: a bare scan of a binding-restricted
                // table has no legal component query.
                if let LogicalPlan::SourceScan { source, table, .. } = &plan {
                    let handle = self.federation.source(source)?;
                    if let Some(p) = handle.connector().capabilities().pattern_for(table) {
                        return Err(EiiError::Plan(format!(
                            "{source}.{table} requires {} bound (access limitation); \
                             join it on that column so a bind join can feed it",
                            p.required_columns.join(", ")
                        )));
                    }
                }
                self.scan_to_source(&plan)
            }
            LogicalPlan::Values { schema, rows } => Ok(PhysicalPlan::Values { schema, rows }),
            LogicalPlan::MatViewScan {
                name,
                schema,
                filters,
                limit,
                local,
                federated,
                saved,
            } => Ok(PhysicalPlan::MatViewScan {
                name,
                schema,
                filters,
                limit,
                local,
                federated,
                saved,
            }),
            LogicalPlan::Filter { input, predicate } => Ok(PhysicalPlan::Filter {
                input: Box::new(self.create(*input)?),
                predicate,
                vectorized: self.config.vectorize,
            }),
            LogicalPlan::Project { input, exprs } => {
                let schema = LogicalPlan::Project {
                    input: input.clone(),
                    exprs: exprs.clone(),
                }
                .schema()?;
                Ok(PhysicalPlan::Project {
                    input: Box::new(self.create(*input)?),
                    exprs,
                    schema,
                    vectorized: self.config.vectorize,
                })
            }
            LogicalPlan::Join { .. } => self.create_join(plan),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let schema = LogicalPlan::Aggregate {
                    input: input.clone(),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                }
                .schema()?;
                Ok(PhysicalPlan::Aggregate {
                    input: Box::new(self.create(*input)?),
                    group_by,
                    aggs,
                    schema,
                    vectorized: self.config.vectorize,
                })
            }
            LogicalPlan::Distinct { input } => Ok(PhysicalPlan::Distinct {
                input: Box::new(self.create(*input)?),
            }),
            LogicalPlan::Sort { input, keys } => Ok(PhysicalPlan::Sort {
                input: Box::new(self.create(*input)?),
                keys,
            }),
            LogicalPlan::Limit { input, n } => Ok(PhysicalPlan::Limit {
                input: Box::new(self.create(*input)?),
                n,
            }),
            LogicalPlan::UnionAll { inputs } => {
                let schema = LogicalPlan::UnionAll {
                    inputs: inputs.clone(),
                }
                .schema()?;
                Ok(PhysicalPlan::UnionAll {
                    inputs: inputs
                        .into_iter()
                        .map(|p| self.create(p))
                        .collect::<Result<_>>()?,
                    parallel: self.config.parallel_fetch,
                    schema,
                })
            }
            LogicalPlan::Alias { input, alias } => {
                let schema = LogicalPlan::Alias {
                    input: input.clone(),
                    alias,
                }
                .schema()?;
                Ok(PhysicalPlan::Rename {
                    input: Box::new(self.create(*input)?),
                    schema,
                })
            }
        }
    }

    fn scan_to_source(&self, scan: &LogicalPlan) -> Result<PhysicalPlan> {
        let LogicalPlan::SourceScan {
            source,
            table,
            pushed_filters,
            projection,
            limit,
            ..
        } = scan
        else {
            unreachable!("caller checked")
        };
        let schema = scan.schema()?;
        Ok(PhysicalPlan::Source {
            source: source.clone(),
            query: SourceQuery {
                table: table.clone(),
                projection: projection.clone(),
                filters: pushed_filters.clone(),
                bindings: vec![],
                limit: *limit,
            },
            schema,
        })
    }

    fn create_join(&self, plan: LogicalPlan) -> Result<PhysicalPlan> {
        let LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } = plan
        else {
            unreachable!("caller checked")
        };
        let left_schema = left.schema()?;
        let right_schema = right.schema()?;
        let joined_schema = LogicalPlan::Join {
            left: left.clone(),
            right: right.clone(),
            kind,
            on: on.clone(),
        }
        .schema()?;

        // Split the condition into equi pairs and residual conjuncts.
        let mut left_keys: Vec<Expr> = Vec::new();
        let mut right_keys: Vec<Expr> = Vec::new();
        let mut residual: Vec<Expr> = Vec::new();
        if let Some(on) = &on {
            for c in conjuncts(on) {
                if let Expr::Binary {
                    left: l,
                    op: BinaryOp::Eq,
                    right: r,
                } = &c
                {
                    let l_in_left = resolves(l, &left_schema);
                    let r_in_right = resolves(r, &right_schema);
                    let l_in_right = resolves(l, &right_schema);
                    let r_in_left = resolves(r, &left_schema);
                    if l_in_left && r_in_right {
                        left_keys.push((**l).clone());
                        right_keys.push((**r).clone());
                        continue;
                    }
                    if l_in_right && r_in_left {
                        left_keys.push((**r).clone());
                        right_keys.push((**l).clone());
                        continue;
                    }
                }
                residual.push(c);
            }
        }

        // Access-limited right (or left) scans force bind joins.
        let model = CostModel::new(self.federation);
        for (probe, _build, probe_keys, build_keys, swapped) in [
            (&right, &left, &right_keys, &left_keys, false),
            (&left, &right, &left_keys, &right_keys, true),
        ] {
            if let Some((src, table)) = scan_target(probe) {
                let handle = self.federation.source(&src)?;
                let caps = handle.connector().capabilities();
                if let Some(pattern) = caps.pattern_for(&table) {
                    if kind != JoinKind::Inner {
                        return Err(EiiError::Plan(format!(
                            "access-limited {src}.{table} only supports inner bind joins"
                        )));
                    }
                    let required = &pattern.required_columns[0];
                    let Some(pos) = probe_keys.iter().position(|k| {
                        matches!(k, Expr::Column { name, .. } if name.eq_ignore_ascii_case(required))
                    }) else {
                        return Err(EiiError::Plan(format!(
                            "{src}.{table} requires {required} bound; the join has no \
                             equality on it"
                        )));
                    };
                    // Other equi pairs become residual checks.
                    let mut extra = residual.clone();
                    for (i, (lk, rk)) in build_keys.iter().zip(probe_keys).enumerate() {
                        if i != pos {
                            extra.push(lk.clone().eq(rk.clone()));
                        }
                    }
                    return self.make_bind_join(
                        if swapped { (*right).clone() } else { (*left).clone() },
                        build_keys[pos].clone(),
                        probe,
                        required,
                        conjoin(extra),
                        joined_schema,
                        swapped,
                    );
                }
            }
        }

        // Optional bind join when the probe side is small.
        if self.config.use_bind_joins
            && kind == JoinKind::Inner
            && !left_keys.is_empty()
        {
            if let Some((src, table)) = scan_target(&right) {
                let handle = self.federation.source(&src)?;
                let caps = handle.connector().capabilities();
                if caps.bindings && caps.pattern_for(&table).is_none() {
                    let left_rows = model.rows(&left)?;
                    let right_rows = model.rows(&right)?;
                    if let Expr::Column { name, .. } = &right_keys[0] {
                        if left_rows * 2.0 < right_rows {
                            let mut extra = residual.clone();
                            for (lk, rk) in
                                left_keys.iter().zip(&right_keys).skip(1)
                            {
                                extra.push(lk.clone().eq(rk.clone()));
                            }
                            let bind_col = name.clone();
                            return self.make_bind_join(
                                (*left).clone(),
                                left_keys[0].clone(),
                                &right,
                                &bind_col,
                                conjoin(extra),
                                joined_schema,
                                false,
                            );
                        }
                    }
                }
            }
        }

        let phys_left = self.create((*left).clone())?;
        let phys_right = self.create((*right).clone())?;

        if left_keys.is_empty() {
            return Ok(PhysicalPlan::NestedLoopJoin {
                left: Box::new(phys_left),
                right: Box::new(phys_right),
                kind,
                on: conjoin(residual),
                parallel: self.config.parallel_fetch,
                schema: joined_schema,
            });
        }

        // Assembly-site selection for pure source-to-source hash joins.
        let site = if self.config.choose_assembly_site && kind == JoinKind::Inner {
            match (scan_target(&left), scan_target(&right)) {
                (Some((ls, _)), Some((rs, _))) if ls != rs => {
                    let le = model.estimate(&left)?;
                    let re = model.estimate(&right)?;
                    let (big_src, big_bytes, small_bytes) = if le.bytes >= re.bytes {
                        (ls, le.bytes, re.bytes)
                    } else {
                        (rs, re.bytes, le.bytes)
                    };
                    let host = self.federation.source(&big_src)?;
                    let host_caps = host.connector().capabilities();
                    // Result still ships to the hub; hosting pays the small
                    // side twice (up to the site, result down).
                    let result_bytes = model.rows(&LogicalPlan::Join {
                        left: left.clone(),
                        right: right.clone(),
                        kind,
                        on: on.clone(),
                    })? * 24.0;
                    let hub_cost = big_bytes + small_bytes;
                    let site_cost = 2.0 * small_bytes + result_bytes;
                    if host_caps.filters && host_caps.bindings && site_cost < hub_cost {
                        JoinSite::AtSource(big_src)
                    } else {
                        JoinSite::Hub
                    }
                }
                _ => JoinSite::Hub,
            }
        } else {
            JoinSite::Hub
        };

        Ok(PhysicalPlan::HashJoin {
            left: Box::new(phys_left),
            right: Box::new(phys_right),
            left_keys,
            right_keys,
            kind,
            residual: conjoin(residual),
            site,
            parallel: self.config.parallel_fetch,
            schema: joined_schema,
            vectorized: self.config.vectorize,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn make_bind_join(
        &self,
        build_side: LogicalPlan,
        build_key: Expr,
        probe_scan: &LogicalPlan,
        bind_column: &str,
        residual: Option<Expr>,
        joined_schema: SchemaRef,
        swapped: bool,
    ) -> Result<PhysicalPlan> {
        let LogicalPlan::SourceScan {
            source,
            table,
            pushed_filters,
            projection,
            ..
        } = probe_scan
        else {
            unreachable!("scan_target checked")
        };
        let right_schema = probe_scan.schema()?;
        // The bind column must come back so rows can be matched.
        let projection = projection.clone().map(|mut cols| {
            if !cols.iter().any(|c| c.eq_ignore_ascii_case(bind_column)) {
                cols.push(bind_column.to_string());
            }
            cols
        });
        let left = self.create(build_side)?;
        let plan = PhysicalPlan::BindJoin {
            left: Box::new(left),
            left_key: build_key,
            source: source.clone(),
            template: SourceQuery {
                table: table.clone(),
                projection,
                filters: pushed_filters.clone(),
                bindings: vec![],
                limit: None,
            },
            bind_column: bind_column.to_string(),
            right_schema: right_schema.clone(),
            residual,
            schema: if swapped {
                // The executor emits build rows (logical right) followed by
                // probe rows (logical left); re-projected to logical order
                // below.
                swapped_schema(&joined_schema, right_schema.len())
            } else {
                joined_schema.clone()
            },
        };
        if swapped {
            // Re-order columns to match the logical join schema.
            let exprs: Vec<(Expr, String)> = joined_schema
                .fields()
                .iter()
                .map(|f| {
                    (
                        Expr::Column {
                            relation: f.relation.clone(),
                            name: f.name.clone(),
                        },
                        f.name.clone(),
                    )
                })
                .collect();
            return Ok(PhysicalPlan::Rename {
                input: Box::new(PhysicalPlan::Project {
                    input: Box::new(plan),
                    exprs,
                    schema: joined_schema.clone(),
                    vectorized: self.config.vectorize,
                }),
                schema: joined_schema,
            });
        }
        Ok(plan)
    }
}

/// EXPLAIN suffix for operators scheduled on the columnar path.
fn vec_tag(vectorized: bool) -> &'static str {
    if vectorized {
        " [VECTORIZED]"
    } else {
        ""
    }
}

/// Column order when the bind join runs with sides swapped: the build side
/// (logical right) emits first, then the probe side (logical left, the
/// access-limited scan) whose schema has `probe_len` columns.
fn swapped_schema(joined: &SchemaRef, probe_len: usize) -> SchemaRef {
    let mut fields = Vec::with_capacity(joined.len());
    fields.extend(joined.fields()[probe_len..].iter().cloned());
    fields.extend(joined.fields()[..probe_len].iter().cloned());
    std::sync::Arc::new(eii_data::Schema::new(fields))
}

fn resolves(expr: &Expr, schema: &eii_data::Schema) -> bool {
    let refs = referenced_columns(expr);
    !refs.is_empty()
        && refs
            .iter()
            .all(|c| schema.index_of(c.relation.as_deref(), &c.name).is_ok())
}

fn scan_target(plan: &LogicalPlan) -> Option<(String, String)> {
    match plan {
        LogicalPlan::SourceScan { source, table, .. } => {
            Some((source.clone(), table.clone()))
        }
        _ => None,
    }
}
