//! Answering queries using views: rewrite federated subtrees into local
//! materialized-view scans when the cost model prefers them.
//!
//! "The problem of answering queries using views ... is to rewrite a query
//! over the virtual schema into one that refers to a set of previously
//! materialized views" — the classic EII optimization this pass implements
//! in its practical form: the planner is handed the definitions of every
//! *servable* materialized view (fresh enough under its refresh policy) as
//! plain data, matches query subtrees against them, and substitutes a
//! [`LogicalPlan::MatViewScan`] wherever reading the local materialization
//! is predicted to beat shipping the data from the sources again.
//!
//! Two matching strategies, applied top-down so the largest subtree wins:
//!
//! 1. **Equivalence** — the subtree is structurally identical to a view's
//!    optimized definition. The view answers it outright.
//! 2. **Containment** — the subtree is a single [`LogicalPlan::SourceScan`]
//!    whose pushed filters *imply* the view's (superset of conjuncts) and
//!    whose projection the view covers. The scan is answered from the view;
//!    the filters the query pushed beyond the view's travel *on* the
//!    `MatViewScan` node and are re-applied by the executor against the
//!    full materialization (which still holds filter columns the query
//!    projects away), along with any compensating `LIMIT`.
//!
//! Every substitution is cost-gated: the pass estimates both alternatives
//! and keeps whichever is cheaper, recording the rejected federated cost on
//! the `MatViewScan` node so `EXPLAIN` can show the decision.

use eii_expr::{referenced_columns, Expr};
use eii_federation::Federation;

use eii_data::{Result, Schema, SchemaRef};

use crate::cost::{CostModel, PlanEstimate};
use crate::logical::LogicalPlan;

/// Simulated milliseconds to open a local materialization (no network).
const MATVIEW_OPEN_MS: f64 = 0.05;

/// A materialized view's definition, exported by the matview manager for
/// the planner's rewrite pass. Carries only plain data so the planner does
/// not depend on the matview crate.
#[derive(Debug, Clone)]
pub struct MatViewDef {
    /// Registered view name (the executor's store key).
    pub name: String,
    /// The view's *optimized* logical definition (same optimizer config as
    /// queries, so equivalent SQL produces a structurally identical tree).
    pub plan: LogicalPlan,
    /// Schema of the materialized rows.
    pub schema: SchemaRef,
    /// Row count of the current materialization.
    pub rows: usize,
}

/// Rewrite `plan` against `views`, substituting [`LogicalPlan::MatViewScan`]
/// nodes where a view answers a subtree more cheaply than the federation.
/// With no matching view (or when federated execution is estimated cheaper)
/// the plan comes back unchanged.
pub fn rewrite_matviews(
    plan: LogicalPlan,
    views: &[MatViewDef],
    federation: &Federation,
) -> Result<LogicalPlan> {
    rewrite_matviews_with_budget(plan, views, federation, None)
}

/// Deadline-aware [`rewrite_matviews`]: `budget_ms` is the query's remaining
/// virtual-time budget. The cost gate relaxes — a view that would lose the
/// plain cost race is still substituted when the federated alternative is
/// estimated to blow the budget while the local read fits inside it. A stale
/// (but servable) local answer inside the deadline beats a fresh one that
/// arrives too late to be seen.
pub fn rewrite_matviews_with_budget(
    plan: LogicalPlan,
    views: &[MatViewDef],
    federation: &Federation,
    budget_ms: Option<f64>,
) -> Result<LogicalPlan> {
    if views.is_empty() {
        return Ok(plan);
    }
    let model = CostModel::new(federation);
    rewrite_node(plan, views, &model, budget_ms)
}

/// Top-down traversal: try to answer this subtree from a view; otherwise
/// recurse into the children.
fn rewrite_node(
    plan: LogicalPlan,
    views: &[MatViewDef],
    model: &CostModel<'_>,
    budget_ms: Option<f64>,
) -> Result<LogicalPlan> {
    if let Some(replacement) = try_substitute(&plan, views, model, budget_ms)? {
        return Ok(replacement);
    }
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite_node(*input, views, model, budget_ms)?),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(rewrite_node(*input, views, model, budget_ms)?),
            exprs,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => LogicalPlan::Join {
            left: Box::new(rewrite_node(*left, views, model, budget_ms)?),
            right: Box::new(rewrite_node(*right, views, model, budget_ms)?),
            kind,
            on,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite_node(*input, views, model, budget_ms)?),
            group_by,
            aggs,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(rewrite_node(*input, views, model, budget_ms)?),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite_node(*input, views, model, budget_ms)?),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(rewrite_node(*input, views, model, budget_ms)?),
            n,
        },
        LogicalPlan::Alias { input, alias } => LogicalPlan::Alias {
            input: Box::new(rewrite_node(*input, views, model, budget_ms)?),
            alias,
        },
        LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(|i| rewrite_node(i, views, model, budget_ms))
                .collect::<Result<Vec<_>>>()?,
        },
        leaf @ (LogicalPlan::SourceScan { .. }
        | LogicalPlan::Values { .. }
        | LogicalPlan::MatViewScan { .. }) => leaf,
    })
}

/// Try every view against this subtree; return the substituted plan for the
/// first match the cost gate accepts.
fn try_substitute(
    plan: &LogicalPlan,
    views: &[MatViewDef],
    model: &CostModel<'_>,
    budget_ms: Option<f64>,
) -> Result<Option<LogicalPlan>> {
    // Nothing federated to save on these.
    if matches!(
        plan,
        LogicalPlan::Values { .. } | LogicalPlan::MatViewScan { .. }
    ) {
        return Ok(None);
    }
    for def in views {
        // Strategy 1: structural equivalence with the view's definition.
        if *plan == def.plan {
            if let Some(scan) =
                gated_scan(plan, def, plan.schema()?, Vec::new(), None, model, budget_ms)?
            {
                return Ok(Some(scan));
            }
            continue;
        }
        // Strategy 2: single-scan containment with compensation.
        if let Some(rewritten) = try_scan_containment(plan, def, model, budget_ms)? {
            return Ok(Some(rewritten));
        }
    }
    Ok(None)
}

/// Build the `MatViewScan` for `def` replacing `subtree`, but only when the
/// cost model predicts the local read beats federated execution.
#[allow(clippy::too_many_arguments)]
fn gated_scan(
    subtree: &LogicalPlan,
    def: &MatViewDef,
    schema: SchemaRef,
    filters: Vec<Expr>,
    limit: Option<usize>,
    model: &CostModel<'_>,
    budget_ms: Option<f64>,
) -> Result<Option<LogicalPlan>> {
    let federated = model.estimate(subtree)?;
    let rows = def.rows as f64;
    let local = PlanEstimate {
        rows,
        bytes: 0.0,
        sim_ms: MATVIEW_OPEN_MS + rows * model.hub_ms_per_row,
    };
    // The plain cost race — or, under a deadline, the budget rescue: a
    // federated fetch predicted to outlast the remaining budget loses to a
    // local read that fits inside it, whatever the raw costs say.
    let beats_federated = local.sim_ms < federated.sim_ms;
    let rescued_by_budget =
        budget_ms.is_some_and(|b| federated.sim_ms > b && local.sim_ms <= b);
    if !beats_federated && !rescued_by_budget {
        return Ok(None);
    }
    Ok(Some(LogicalPlan::MatViewScan {
        name: def.name.clone(),
        schema,
        filters,
        limit,
        local,
        federated,
        saved: per_source_bytes(subtree, model),
    }))
}

/// Estimated bytes each source would have shipped for `subtree`, for the
/// federation's bytes-saved ledger.
fn per_source_bytes(subtree: &LogicalPlan, model: &CostModel<'_>) -> Vec<(String, f64)> {
    let mut acc: Vec<(String, f64)> = Vec::new();
    collect_scans(subtree, model, &mut acc);
    acc
}

fn collect_scans(plan: &LogicalPlan, model: &CostModel<'_>, acc: &mut Vec<(String, f64)>) {
    if let LogicalPlan::SourceScan { source, .. } = plan {
        let bytes = model.estimate(plan).map(|e| e.bytes).unwrap_or(0.0);
        match acc.iter_mut().find(|(s, _)| s == source) {
            Some((_, b)) => *b += bytes,
            None => acc.push((source.clone(), bytes)),
        }
        return;
    }
    for child in plan.children() {
        collect_scans(child, model, acc);
    }
}

/// Containment matching for a single scan: the view materializes a superset
/// of what the scan requests, so answer it locally and compensate with hub
/// `Filter`/`Limit` operators.
fn try_scan_containment(
    plan: &LogicalPlan,
    def: &MatViewDef,
    model: &CostModel<'_>,
    budget_ms: Option<f64>,
) -> Result<Option<LogicalPlan>> {
    let LogicalPlan::SourceScan {
        source: q_source,
        table: q_table,
        alias: q_alias,
        base_schema,
        pushed_filters: q_filters,
        projection: q_proj,
        limit: q_limit,
    } = plan
    else {
        return Ok(None);
    };
    let Some(LogicalPlan::SourceScan {
        source: v_source,
        table: v_table,
        pushed_filters: v_filters,
        projection: v_proj,
        limit: v_limit,
        ..
    }) = view_as_scan(&def.plan)
    else {
        return Ok(None);
    };
    // Same base table; the view must not have truncated rows.
    if v_source != q_source || v_table != q_table || v_limit.is_some() {
        return Ok(None);
    }
    // Every filter the view applied must also be applied by the query, or
    // the view is missing rows the query needs.
    if !v_filters.iter().all(|f| q_filters.contains(f)) {
        return Ok(None);
    }
    // The view must materialize every column the query returns.
    let covered = |col: &String| match v_proj {
        None => true,
        Some(cols) => cols.iter().any(|c| c.eq_ignore_ascii_case(col)),
    };
    match (q_proj, v_proj) {
        (_, None) => {}
        (Some(q_cols), Some(_)) => {
            if !q_cols.iter().all(covered) {
                return Ok(None);
            }
        }
        (None, Some(v_cols)) => {
            // The query wants every base column; the view must have them all.
            if v_cols.len() < base_schema.len() {
                return Ok(None);
            }
        }
    }
    // Filters the query pushed beyond the view's are re-applied by the
    // executor over the full materialization, so their (table-local)
    // references need only be columns the view materialized — they may be
    // absent from the scan's own projected output.
    let extra: Vec<Expr> = q_filters
        .iter()
        .filter(|f| !v_filters.contains(f))
        .cloned()
        .collect();
    let filterable = extra.iter().all(|f| {
        referenced_columns(f)
            .iter()
            .all(|c| c.relation.is_none() && covered(&c.name))
    });
    if !filterable {
        return Ok(None);
    }
    // The MatViewScan adopts the scan's own output schema; the executor
    // filters the stored rows, then adapts them to it by column name.
    let requalified = Schema::new(
        plan.schema()?
            .fields()
            .iter()
            .map(|f| f.clone().with_relation(q_alias.clone()))
            .collect(),
    );
    gated_scan(
        plan,
        def,
        std::sync::Arc::new(requalified),
        extra,
        *q_limit,
        model,
        budget_ms,
    )
}

/// Unwrap a view definition down to its `SourceScan`, tolerating an
/// *identity* projection the optimizer may have left for output naming
/// (every expression a bare column matching the input field in position and
/// name — so the materialized rows are the scan's rows unchanged).
fn view_as_scan(plan: &LogicalPlan) -> Option<&LogicalPlan> {
    match plan {
        scan @ LogicalPlan::SourceScan { .. } => Some(scan),
        LogicalPlan::Project { input, exprs } => {
            let scan = view_as_scan(input)?;
            let schema = scan.schema().ok()?;
            if exprs.len() != schema.len() {
                return None;
            }
            let identity = exprs.iter().enumerate().all(|(i, (e, name))| {
                matches!(e, Expr::Column { name: n, .. }
                    if n.eq_ignore_ascii_case(&schema.field(i).name))
                    && name.eq_ignore_ascii_case(&schema.field(i).name)
            });
            identity.then_some(scan)
        }
        _ => None,
    }
}
