//! Rewrite rules: constant folding, predicate pushdown, projection pruning.
//!
//! Predicate pushdown is *the* EII optimization — "the more work the
//! component queries can do, the less work will remain to be done at the
//! assembly site" (Bitton §3). Predicates travel through projections,
//! aliases, joins, unions, and aggregates until they either reach a source
//! scan whose dialect accepts them (becoming part of the component query) or
//! get stuck and stay at the assembly site.

use std::cell::Cell;
use std::collections::BTreeSet;

use eii_data::Result;
use eii_expr::{conjoin, conjuncts, fold_constants, referenced_columns, Expr};
use eii_federation::{Dialect, Federation};
use eii_sql::JoinKind;

use crate::config::PlannerConfig;
use crate::join_order::reorder_joins;
use crate::logical::LogicalPlan;

/// Run the full rewrite pipeline.
pub fn optimize(
    plan: LogicalPlan,
    federation: &Federation,
    config: &PlannerConfig,
) -> Result<LogicalPlan> {
    let plan = fold_plan_constants(plan);
    let mut plan = push_down(plan, Vec::new(), federation, config)?;
    if config.reorder_joins {
        plan = reorder_joins(plan, federation)?;
    }
    if config.pushdown_projection {
        plan = prune_scan_projections(plan, federation)?;
    }
    if config.pushdown_limits {
        plan = push_limits(plan, federation);
    }
    Ok(plan)
}

/// Push LIMIT caps into source component queries. Only row-preserving
/// nodes (Project, Alias) may sit between the Limit and the scan; the scan's
/// own pushed filters are fine because sources apply filters before limits.
/// The Limit node itself stays (the cap at the source makes it a no-op).
fn push_limits(plan: LogicalPlan, fed: &Federation) -> LogicalPlan {
    map_plan(plan, &|node| match node {
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(annotate_limit(*input, n, fed)),
            n,
        },
        other => other,
    })
}

fn annotate_limit(plan: LogicalPlan, n: usize, fed: &Federation) -> LogicalPlan {
    match plan {
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(annotate_limit(*input, n, fed)),
            exprs,
        },
        LogicalPlan::Alias { input, alias } => LogicalPlan::Alias {
            input: Box::new(annotate_limit(*input, n, fed)),
            alias,
        },
        LogicalPlan::Limit { input, n: inner } => LogicalPlan::Limit {
            input: Box::new(annotate_limit(*input, n.min(inner), fed)),
            n: inner,
        },
        LogicalPlan::SourceScan {
            source,
            table,
            alias,
            base_schema,
            pushed_filters,
            projection,
            limit,
        } => {
            let supports = fed
                .source(&source)
                .map(|h| h.connector().capabilities().limit)
                .unwrap_or(false);
            let limit = if supports {
                Some(limit.map_or(n, |prev| prev.min(n)))
            } else {
                limit
            };
            LogicalPlan::SourceScan {
                source,
                table,
                alias,
                base_schema,
                pushed_filters,
                projection,
                limit,
            }
        }
        other => other,
    }
}

/// Fold constants in every expression of the plan.
pub fn fold_plan_constants(plan: LogicalPlan) -> LogicalPlan {
    map_plan(plan, &|node| match node {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input,
            predicate: fold_constants(predicate),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input,
            exprs: exprs
                .into_iter()
                .map(|(e, n)| (fold_constants(e), n))
                .collect(),
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => LogicalPlan::Join {
            left,
            right,
            kind,
            on: on.map(fold_constants),
        },
        other => other,
    })
}

/// Bottom-up structural rewrite.
fn map_plan(plan: LogicalPlan, f: &impl Fn(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    let rebuilt = match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(map_plan(*input, f)),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(map_plan(*input, f)),
            exprs,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => LogicalPlan::Join {
            left: Box::new(map_plan(*left, f)),
            right: Box::new(map_plan(*right, f)),
            kind,
            on,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(map_plan(*input, f)),
            group_by,
            aggs,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(map_plan(*input, f)),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(map_plan(*input, f)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(map_plan(*input, f)),
            n,
        },
        LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
            inputs: inputs.into_iter().map(|p| map_plan(p, f)).collect(),
        },
        LogicalPlan::Alias { input, alias } => LogicalPlan::Alias {
            input: Box::new(map_plan(*input, f)),
            alias,
        },
        leaf => leaf,
    };
    f(rebuilt)
}

use crate::util::{resolves_in, rewrite_through_project};

/// Remove relation qualifiers (predicate addressed to a single table).
fn strip_qualifiers(expr: Expr) -> Expr {
    expr.transform(|e| match e {
        Expr::Column { name, .. } => Expr::Column {
            relation: None,
            name,
        },
        other => other,
    })
}

/// Rewrite a predicate across an Alias boundary: refs to `alias.col` (or
/// bare `col`) become refs to the underlying input columns. `None` when any
/// reference fails to resolve.
fn rewrite_through_alias(
    expr: &Expr,
    aliased: &eii_data::Schema,
    inner: &eii_data::Schema,
) -> Option<Expr> {
    let ok = Cell::new(true);
    let rewritten = expr.clone().transform(|e| match e {
        Expr::Column { relation, name } => {
            match aliased.index_of(relation.as_deref(), &name) {
                Ok(i) => {
                    let f = inner.field(i);
                    Expr::Column {
                        relation: f.relation.clone(),
                        name: f.name.clone(),
                    }
                }
                Err(_) => {
                    ok.set(false);
                    Expr::Column { relation, name }
                }
            }
        }
        other => other,
    });
    ok.get().then_some(rewritten)
}

/// Rewrite a predicate across a UnionAll into one branch (positional
/// mapping of the union's output names onto the branch's fields).
fn rewrite_into_union_branch(
    expr: &Expr,
    union_schema: &eii_data::Schema,
    branch_schema: &eii_data::Schema,
) -> Option<Expr> {
    let ok = Cell::new(true);
    let rewritten = expr.clone().transform(|e| match e {
        Expr::Column { relation, name } => {
            match union_schema.index_of(relation.as_deref(), &name) {
                Ok(i) => {
                    let f = branch_schema.field(i);
                    Expr::Column {
                        relation: f.relation.clone(),
                        name: f.name.clone(),
                    }
                }
                Err(_) => {
                    ok.set(false);
                    Expr::Column { relation, name }
                }
            }
        }
        other => other,
    });
    ok.get().then_some(rewritten)
}

/// Rewrite a predicate across an Aggregate: references to group-key output
/// names become the grouping expressions; references to aggregate outputs
/// block the rewrite.
fn rewrite_through_aggregate(
    expr: &Expr,
    group_by: &[Expr],
    agg_names: &[String],
) -> Option<Expr> {
    let ok = Cell::new(true);
    let rewritten = expr.clone().transform(|e| match e {
        Expr::Column { relation, name } => {
            if relation.is_none() {
                if agg_names.iter().any(|a| a.eq_ignore_ascii_case(&name)) {
                    ok.set(false);
                    return Expr::Column { relation, name };
                }
                if let Some(g) = group_by
                    .iter()
                    .find(|g| g.output_name().eq_ignore_ascii_case(&name))
                {
                    return g.clone();
                }
            }
            ok.set(false);
            Expr::Column { relation, name }
        }
        other => other,
    });
    ok.get().then_some(rewritten)
}

/// Wrap residual conjuncts above a node.
fn wrap_residual(plan: LogicalPlan, residual: Vec<Expr>) -> LogicalPlan {
    match conjoin(residual) {
        Some(pred) => LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: pred,
        },
        None => plan,
    }
}

/// The pushdown driver: `pending` conjuncts are looking for the deepest
/// node that can evaluate them.
fn push_down(
    plan: LogicalPlan,
    mut pending: Vec<Expr>,
    fed: &Federation,
    config: &PlannerConfig,
) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            pending.extend(conjuncts(&fold_constants(predicate)));
            push_down(*input, pending, fed, config)
        }
        LogicalPlan::SourceScan {
            source,
            table,
            alias,
            base_schema,
            mut pushed_filters,
            projection,
            limit,
        } => {
            let handle = fed.source(&source)?;
            let caps = handle.connector().capabilities();
            let dialect: Dialect = config
                .dialect_override
                .clone()
                .unwrap_or_else(|| handle.connector().dialect());
            let qualified = base_schema.qualified(&alias);
            let mut residual = Vec::new();
            for p in pending {
                let can_push = config.pushdown_filters
                    && caps.filters
                    && resolves_in(&p, &qualified)
                    && {
                        let stripped = strip_qualifiers(p.clone());
                        dialect.supports(&stripped)
                    };
                if can_push {
                    pushed_filters.push(strip_qualifiers(p));
                } else {
                    residual.push(p);
                }
            }
            let scan = LogicalPlan::SourceScan {
                source,
                table,
                alias,
                base_schema,
                pushed_filters,
                projection,
                limit,
            };
            Ok(wrap_residual(scan, residual))
        }
        LogicalPlan::Alias { input, alias } => {
            let aliased = LogicalPlan::Alias {
                input: input.clone(),
                alias: alias.clone(),
            }
            .schema()?;
            let inner_schema = input.schema()?;
            let mut below = Vec::new();
            let mut residual = Vec::new();
            for p in pending {
                match rewrite_through_alias(&p, &aliased, &inner_schema) {
                    Some(r) => below.push(r),
                    None => residual.push(p),
                }
            }
            let new_input = push_down(*input, below, fed, config)?;
            Ok(wrap_residual(
                LogicalPlan::Alias {
                    input: Box::new(new_input),
                    alias,
                },
                residual,
            ))
        }
        LogicalPlan::Project { input, exprs } => {
            let mut below = Vec::new();
            let mut residual = Vec::new();
            for p in pending {
                match rewrite_through_project(&p, &exprs) {
                    Some(r) => below.push(r),
                    None => residual.push(p),
                }
            }
            let new_input = push_down(*input, below, fed, config)?;
            Ok(wrap_residual(
                LogicalPlan::Project {
                    input: Box::new(new_input),
                    exprs,
                },
                residual,
            ))
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => {
            let left_schema = left.schema()?;
            let right_schema = right.schema()?;
            let mut left_pending = Vec::new();
            let mut right_pending = Vec::new();
            let mut join_preds = Vec::new();
            let mut residual = Vec::new();

            let mut kept_on = on.clone();
            let mut new_kind = kind;
            match kind {
                JoinKind::Inner | JoinKind::Cross => {
                    // ON conjuncts join the pending pool.
                    let mut pool = pending;
                    if let Some(on) = on {
                        pool.extend(conjuncts(&on));
                    }
                    for p in pool {
                        if resolves_in(&p, &left_schema) {
                            left_pending.push(p);
                        } else if resolves_in(&p, &right_schema) {
                            right_pending.push(p);
                        } else {
                            join_preds.push(p);
                        }
                    }
                    if !join_preds.is_empty() {
                        new_kind = JoinKind::Inner;
                    }
                    kept_on = conjoin(std::mem::take(&mut join_preds));
                }
                JoinKind::Left => {
                    // Pending predicates on the preserved side sink; right-
                    // side or mixed predicates from above must stay above
                    // (null-extension semantics). The ON stays whole.
                    for p in pending {
                        if resolves_in(&p, &left_schema) {
                            left_pending.push(p);
                        } else {
                            residual.push(p);
                        }
                    }
                }
                JoinKind::Semi | JoinKind::Anti => {
                    // Pending predicates see only left columns; they sink
                    // left (filters on L commute with semi/anti joins).
                    for p in pending {
                        if resolves_in(&p, &left_schema) {
                            left_pending.push(p);
                        } else {
                            residual.push(p);
                        }
                    }
                    // ON conjuncts: right-only ones restrict which right
                    // rows can match and sink right for both kinds.
                    // Left-only ones sink left for SEMI (a left row failing
                    // the condition has no match and is dropped either way)
                    // but must stay in the ON for ANTI (failing rows have no
                    // match and must be KEPT).
                    let mut kept = Vec::new();
                    if let Some(on) = on {
                        for c in conjuncts(&on) {
                            let in_left = resolves_in(&c, &left_schema);
                            let in_right = resolves_in(&c, &right_schema);
                            if in_right && !in_left {
                                right_pending.push(c);
                            } else if kind == JoinKind::Semi && in_left && !in_right {
                                left_pending.push(c);
                            } else {
                                // Cross-side, or ambiguous enough to resolve
                                // on both sides: keep it as the join
                                // condition.
                                kept.push(c);
                            }
                        }
                    }
                    kept_on = conjoin(kept);
                }
            }
            let new_left = push_down(*left, left_pending, fed, config)?;
            let new_right = push_down(*right, right_pending, fed, config)?;
            let new_on = kept_on;
            Ok(wrap_residual(
                LogicalPlan::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind: new_kind,
                    on: new_on,
                },
                residual,
            ))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let agg_names: Vec<String> = aggs.iter().map(|a| a.name.clone()).collect();
            let mut below = Vec::new();
            let mut residual = Vec::new();
            for p in pending {
                match rewrite_through_aggregate(&p, &group_by, &agg_names) {
                    Some(r) => below.push(r),
                    None => residual.push(p),
                }
            }
            let new_input = push_down(*input, below, fed, config)?;
            Ok(wrap_residual(
                LogicalPlan::Aggregate {
                    input: Box::new(new_input),
                    group_by,
                    aggs,
                },
                residual,
            ))
        }
        LogicalPlan::Distinct { input } => {
            let new_input = push_down(*input, pending, fed, config)?;
            Ok(LogicalPlan::Distinct {
                input: Box::new(new_input),
            })
        }
        LogicalPlan::Sort { input, keys } => {
            let new_input = push_down(*input, pending, fed, config)?;
            Ok(LogicalPlan::Sort {
                input: Box::new(new_input),
                keys,
            })
        }
        LogicalPlan::Limit { input, n } => {
            // Filters cannot cross a LIMIT.
            let new_input = push_down(*input, Vec::new(), fed, config)?;
            Ok(wrap_residual(
                LogicalPlan::Limit {
                    input: Box::new(new_input),
                    n,
                },
                pending,
            ))
        }
        LogicalPlan::UnionAll { inputs } => {
            let union_schema = LogicalPlan::UnionAll {
                inputs: inputs.clone(),
            }
            .schema()?;
            // A pending conjunct pushes only if it rewrites into *every*
            // branch.
            let mut pushable: Vec<Expr> = Vec::new();
            let mut residual: Vec<Expr> = Vec::new();
            let branch_schemas = inputs
                .iter()
                .map(LogicalPlan::schema)
                .collect::<Result<Vec<_>>>()?;
            for p in pending {
                let all_ok = branch_schemas
                    .iter()
                    .all(|bs| rewrite_into_union_branch(&p, &union_schema, bs).is_some());
                if all_ok {
                    pushable.push(p);
                } else {
                    residual.push(p);
                }
            }
            let mut new_inputs = Vec::with_capacity(inputs.len());
            for (branch, bs) in inputs.into_iter().zip(&branch_schemas) {
                let branch_pending = pushable
                    .iter()
                    .map(|p| {
                        rewrite_into_union_branch(p, &union_schema, bs)
                            .expect("checked above")
                    })
                    .collect();
                new_inputs.push(push_down(branch, branch_pending, fed, config)?);
            }
            Ok(wrap_residual(
                LogicalPlan::UnionAll { inputs: new_inputs },
                residual,
            ))
        }
        leaf @ (LogicalPlan::Values { .. } | LogicalPlan::MatViewScan { .. }) => {
            Ok(wrap_residual(leaf, pending))
        }
    }
}

/// Collect every column reference appearing in any expression of the plan.
fn collect_all_refs(plan: &LogicalPlan, out: &mut BTreeSet<(Option<String>, String)>) {
    let mut add = |e: &Expr| {
        for c in referenced_columns(e) {
            out.insert((c.relation, c.name));
        }
    };
    match plan {
        LogicalPlan::Filter { predicate, .. } => add(predicate),
        LogicalPlan::Project { exprs, .. } => {
            for (e, _) in exprs {
                add(e);
            }
        }
        LogicalPlan::Join { on: Some(on), .. } => add(on),
        LogicalPlan::Aggregate {
            group_by, aggs, ..
        } => {
            for g in group_by {
                add(g);
            }
            for a in aggs {
                if let Some(arg) = &a.arg {
                    add(arg);
                }
            }
        }
        LogicalPlan::Sort { keys, .. } => {
            for (e, _) in keys {
                add(e);
            }
        }
        _ => {}
    }
    for c in plan.children() {
        collect_all_refs(c, out);
    }
}

/// Set each scan's projection to the columns the rest of the plan actually
/// references (network-volume reduction; Bitton's "local reduction").
fn prune_scan_projections(plan: LogicalPlan, fed: &Federation) -> Result<LogicalPlan> {
    let mut refs = BTreeSet::new();
    collect_all_refs(&plan, &mut refs);
    Ok(prune_rec(plan, &refs, fed))
}

fn prune_rec(
    plan: LogicalPlan,
    refs: &BTreeSet<(Option<String>, String)>,
    fed: &Federation,
) -> LogicalPlan {
    map_plan(plan, &|node| match node {
        LogicalPlan::SourceScan {
            source,
            table,
            alias,
            base_schema,
            pushed_filters,
            projection,
            limit,
        } => {
            let caps = match fed.source(&source) {
                Ok(h) => h.connector().capabilities(),
                Err(_) => {
                    return LogicalPlan::SourceScan {
                        source,
                        table,
                        alias,
                        base_schema,
                        pushed_filters,
                        projection,
                        limit,
                    }
                }
            };
            if !caps.projection || projection.is_some() {
                return LogicalPlan::SourceScan {
                    source,
                    table,
                    alias,
                    base_schema,
                    pushed_filters,
                    projection,
                    limit,
                };
            }
            let mut needed: Vec<String> = Vec::new();
            for f in base_schema.fields() {
                let used = refs.iter().any(|(rel, name)| {
                    name.eq_ignore_ascii_case(&f.name)
                        && match rel {
                            Some(r) => r.eq_ignore_ascii_case(&alias),
                            None => true, // conservative: unqualified matches
                        }
                });
                if used {
                    needed.push(f.name.clone());
                }
            }
            if needed.is_empty() {
                // e.g. COUNT(*): ship the narrowest thing we can, one column.
                needed.push(base_schema.field(0).name.clone());
            }
            let projection = if needed.len() == base_schema.len() {
                None
            } else {
                Some(needed)
            };
            LogicalPlan::SourceScan {
                source,
                table,
                alias,
                base_schema,
                pushed_filters,
                projection,
                limit,
            }
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::PlanBuilder;
    use eii_catalog::Catalog;
    use eii_data::{row, DataType, Field, Schema, SimClock};
    use eii_federation::{
        CsvConnector, LinkProfile, RelationalConnector, WireFormat,
    };
    use eii_sql::parse_query;
    use eii_storage::{Database, TableDef};
    use std::sync::Arc;

    fn setup() -> (Catalog, Federation) {
        let crm = Database::new("crm", SimClock::new());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
            Field::new("region", DataType::Str),
        ]));
        let t = crm
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        for i in 0..20i64 {
            t.write()
                .insert(row![i, format!("c{i}"), format!("r{}", i % 4)])
                .unwrap();
        }
        let orders = Database::new("orders", SimClock::new());
        let oschema = Arc::new(Schema::new(vec![
            Field::new("order_id", DataType::Int).not_null(),
            Field::new("customer_id", DataType::Int),
            Field::new("total", DataType::Float),
        ]));
        let ot = orders
            .create_table(TableDef::new("orders", oschema).with_primary_key(0))
            .unwrap();
        for i in 0..50i64 {
            ot.write().insert(row![i, i % 20, i as f64]).unwrap();
        }
        let files = CsvConnector::new("files")
            .add_file(
                "notes",
                "id,note\n1,hello\n2,world\n",
                ',',
                &[DataType::Int, DataType::Str],
            )
            .unwrap();
        let fed = Federation::new();
        fed.register(
            Arc::new(RelationalConnector::new(crm)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        fed.register(
            Arc::new(RelationalConnector::new(orders)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        fed.register(Arc::new(files), LinkProfile::lan(), WireFormat::Native)
            .unwrap();
        (Catalog::new(), fed)
    }

    fn optimized(sql: &str, cat: &Catalog, fed: &Federation, cfg: &PlannerConfig) -> LogicalPlan {
        let plan = PlanBuilder::new(cat, fed)
            .build(&parse_query(sql).unwrap())
            .unwrap();
        optimize(plan, fed, cfg).unwrap()
    }

    fn find_scans(plan: &LogicalPlan, out: &mut Vec<LogicalPlan>) {
        if matches!(plan, LogicalPlan::SourceScan { .. }) {
            out.push(plan.clone());
        }
        for c in plan.children() {
            find_scans(c, out);
        }
    }

    #[test]
    fn filter_reaches_the_scan() {
        let (cat, fed) = setup();
        let p = optimized(
            "SELECT name FROM crm.customers WHERE region = 'r1' AND id > 5",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan { pushed_filters, .. } => {
                assert_eq!(pushed_filters.len(), 2, "{}", p.display());
            }
            _ => unreachable!(),
        }
        // No residual filter remains.
        assert!(!p.display().contains("Filter"), "{}", p.display());
    }

    #[test]
    fn naive_config_pushes_nothing() {
        let (cat, fed) = setup();
        let p = optimized(
            "SELECT name FROM crm.customers WHERE region = 'r1'",
            &cat,
            &fed,
            &PlannerConfig::naive(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan {
                pushed_filters,
                projection,
                ..
            } => {
                assert!(pushed_filters.is_empty());
                assert!(projection.is_none());
            }
            _ => unreachable!(),
        }
        assert!(p.display().contains("Filter"));
    }

    #[test]
    fn join_splits_predicates_by_side() {
        let (cat, fed) = setup();
        let p = optimized(
            "SELECT c.name, o.total FROM crm.customers c JOIN orders.orders o \
             ON c.id = o.customer_id WHERE c.region = 'r1' AND o.total > 10",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        assert_eq!(scans.len(), 2);
        for s in &scans {
            match s {
                LogicalPlan::SourceScan {
                    source,
                    pushed_filters,
                    ..
                } => {
                    assert_eq!(pushed_filters.len(), 1, "source {source}");
                }
                _ => unreachable!(),
            }
        }
        // The cross-source equi predicate stays as the join condition.
        assert!(p.display().contains("INNER JOIN ON"), "{}", p.display());
    }

    #[test]
    fn flat_file_cannot_accept_pushdown() {
        let (cat, fed) = setup();
        let p = optimized(
            "SELECT note FROM files.notes WHERE id = 1",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan {
                pushed_filters,
                projection,
                ..
            } => {
                assert!(pushed_filters.is_empty(), "flat files evaluate nothing");
                assert!(projection.is_none());
            }
            _ => unreachable!(),
        }
        assert!(p.display().contains("Filter"));
    }

    #[test]
    fn dialect_override_blocks_pushdown() {
        let (cat, fed) = setup();
        let mut cfg = PlannerConfig::optimized();
        cfg.dialect_override = Some(Dialect::lowest_common_denominator());
        let p = optimized(
            "SELECT name FROM crm.customers WHERE id > 5",
            &cat,
            &fed,
            &cfg,
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan { pushed_filters, .. } => {
                assert!(pushed_filters.is_empty(), "LCD has no > operator");
            }
            _ => unreachable!(),
        }
        // Equality still pushes under LCD.
        let p = optimized(
            "SELECT name FROM crm.customers WHERE region = 'r1'",
            &cat,
            &fed,
            &cfg,
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan { pushed_filters, .. } => {
                assert_eq!(pushed_filters.len(), 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn projection_pruning_narrows_scans() {
        let (cat, fed) = setup();
        let p = optimized(
            "SELECT name FROM crm.customers WHERE region = 'r1'",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan { projection, .. } => {
                // region is consumed by the pushed filter; only name ships.
                assert_eq!(projection.as_deref(), Some(&["name".to_string()][..]));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn pushdown_through_view_alias() {
        let (cat, fed) = setup();
        cat.create_view_sql(
            "CREATE VIEW custs AS SELECT id, name, region FROM crm.customers",
        )
        .unwrap();
        let p = optimized(
            "SELECT v.name FROM custs v WHERE v.region = 'r2'",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan { pushed_filters, .. } => {
                assert_eq!(pushed_filters.len(), 1, "{}", p.display());
                assert_eq!(pushed_filters[0].to_string(), "(region = 'r2')");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn pushdown_into_union_branches() {
        let (cat, fed) = setup();
        cat.create_view_sql(
            "CREATE VIEW all_ids AS SELECT id FROM crm.customers UNION ALL SELECT order_id AS id FROM orders.orders",
        )
        .unwrap();
        let p = optimized(
            "SELECT id FROM all_ids WHERE id < 3",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        assert_eq!(scans.len(), 2);
        for s in &scans {
            match s {
                LogicalPlan::SourceScan { pushed_filters, .. } => {
                    assert_eq!(pushed_filters.len(), 1, "{}", p.display());
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn left_join_right_predicate_stays_above() {
        let (cat, fed) = setup();
        let p = optimized(
            "SELECT c.name FROM crm.customers c LEFT JOIN orders.orders o \
             ON c.id = o.customer_id WHERE o.total > 10",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        for s in &scans {
            match s {
                LogicalPlan::SourceScan {
                    source,
                    pushed_filters,
                    ..
                } if source == "orders" => {
                    assert!(
                        pushed_filters.is_empty(),
                        "LEFT JOIN right-side predicate must not sink: {}",
                        p.display()
                    );
                }
                _ => {}
            }
        }
        assert!(p.display().contains("Filter"));
    }

    #[test]
    fn limit_blocks_pushdown() {
        let (cat, fed) = setup();
        cat.create_view_sql("CREATE VIEW top5 AS SELECT id, name, region FROM crm.customers LIMIT 5")
            .unwrap();
        let p = optimized(
            "SELECT name FROM top5 WHERE region = 'r1'",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan { pushed_filters, .. } => {
                assert!(
                    pushed_filters.is_empty(),
                    "filter must not cross LIMIT: {}",
                    p.display()
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn having_on_group_key_pushes_below_aggregate() {
        let (cat, fed) = setup();
        let p = optimized(
            "SELECT region, COUNT(*) AS n FROM crm.customers GROUP BY region HAVING region = 'r1'",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan { pushed_filters, .. } => {
                assert_eq!(pushed_filters.len(), 1, "{}", p.display());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn limit_pushes_into_capable_scan() {
        let (cat, fed) = setup();
        let p = optimized(
            "SELECT name FROM crm.customers WHERE region = 'r1' LIMIT 3",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan { limit, .. } => {
                assert_eq!(*limit, Some(3), "{}", p.display());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn limit_does_not_cross_sort_or_flat_files() {
        let (cat, fed) = setup();
        // Sort blocks the limit (top-N needs all rows).
        let p = optimized(
            "SELECT name FROM crm.customers ORDER BY name LIMIT 3",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan { limit, .. } => assert_eq!(*limit, None),
            _ => unreachable!(),
        }
        // Flat files cannot honor LIMIT.
        let p = optimized(
            "SELECT id FROM files.notes LIMIT 1",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        let mut scans = Vec::new();
        find_scans(&p, &mut scans);
        match &scans[0] {
            LogicalPlan::SourceScan { limit, .. } => assert_eq!(*limit, None),
            _ => unreachable!(),
        }
    }

    #[test]
    fn having_on_aggregate_stays_above() {
        let (cat, fed) = setup();
        let p = optimized(
            "SELECT region, COUNT(*) AS n FROM crm.customers GROUP BY region HAVING n > 2",
            &cat,
            &fed,
            &PlannerConfig::optimized(),
        );
        assert!(p.display().contains("Filter (n > 2)"), "{}", p.display());
    }
}
