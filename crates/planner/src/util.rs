//! Small expression/schema helpers shared by the builder and the rules.

use std::cell::Cell;

use eii_data::Schema;
use eii_expr::{referenced_columns, Expr};

/// Does every column reference in `expr` resolve in `schema`?
pub(crate) fn resolves_in(expr: &Expr, schema: &Schema) -> bool {
    referenced_columns(expr)
        .iter()
        .all(|c| schema.index_of(c.relation.as_deref(), &c.name).is_ok())
}

/// Rewrite an expression across a Project: substitute references to project
/// output names with their defining expressions. `None` when a reference is
/// not a plain, unambiguous project output.
pub(crate) fn rewrite_through_project(expr: &Expr, exprs: &[(Expr, String)]) -> Option<Expr> {
    let ok = Cell::new(true);
    let rewritten = expr.clone().transform(|e| match e {
        Expr::Column { relation, name } => {
            let matches: Vec<&(Expr, String)> = exprs
                .iter()
                .filter(|(_, n)| n.eq_ignore_ascii_case(&name))
                .collect();
            match (relation.as_ref(), matches.as_slice()) {
                (None, [one]) => one.0.clone(),
                _ => {
                    ok.set(false);
                    Expr::Column { relation, name }
                }
            }
        }
        other => other,
    });
    ok.get().then_some(rewritten)
}
