//! The TF-IDF inverted index.

use std::collections::HashMap;

use eii_docstore::tokenize_text;

/// What kind of thing an indexed item is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A row of structured data ("business object").
    Structured,
    /// An unstructured/semi-structured document.
    Document,
}

/// One indexed item.
#[derive(Debug, Clone)]
pub struct IndexedItem {
    /// Source the item came from (ACL unit).
    pub source: String,
    /// Stable reference for drill-down (`crm.customers#3`, `docs#42`).
    pub item_ref: String,
    pub kind: ItemKind,
    /// Short display snippet.
    pub snippet: String,
    /// Token count (for length normalization).
    pub length: usize,
}

/// An inverted index with TF-IDF scoring.
#[derive(Debug, Default)]
pub struct SearchIndex {
    items: Vec<IndexedItem>,
    /// token -> (item id, term frequency).
    postings: HashMap<String, Vec<(usize, usize)>>,
}

impl SearchIndex {
    /// Empty index.
    pub fn new() -> Self {
        SearchIndex::default()
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Item metadata by id.
    pub fn item(&self, id: usize) -> &IndexedItem {
        &self.items[id]
    }

    /// Add an item with its full text; returns its id.
    pub fn add(
        &mut self,
        source: &str,
        item_ref: String,
        kind: ItemKind,
        text: &str,
    ) -> usize {
        let id = self.items.len();
        let tokens = tokenize_text(text);
        let mut tf: HashMap<String, usize> = HashMap::new();
        for t in &tokens {
            *tf.entry(t.clone()).or_insert(0) += 1;
        }
        for (token, count) in tf {
            self.postings.entry(token).or_default().push((id, count));
        }
        let snippet: String = text.chars().take(120).collect();
        self.items.push(IndexedItem {
            source: source.to_string(),
            item_ref,
            kind,
            snippet,
            length: tokens.len().max(1),
        });
        id
    }

    /// TF-IDF scores of all items matching *any* query token (disjunctive
    /// retrieval; ranking rewards covering more terms). Returns
    /// `(item id, score)` sorted best-first, ties broken by item id.
    pub fn score(&self, query: &str) -> Vec<(usize, f64)> {
        let tokens = tokenize_text(query);
        if tokens.is_empty() || self.items.is_empty() {
            return Vec::new();
        }
        let n = self.items.len() as f64;
        let mut scores: HashMap<usize, f64> = HashMap::new();
        for token in tokens {
            let Some(postings) = self.postings.get(&token) else {
                continue;
            };
            let idf = (n / postings.len() as f64).ln() + 1.0;
            for (id, tf) in postings {
                let norm_tf = *tf as f64 / self.items[*id].length as f64;
                *scores.entry(*id).or_insert(0.0) += norm_tf.sqrt() * idf;
            }
        }
        let mut out: Vec<(usize, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> SearchIndex {
        let mut ix = SearchIndex::new();
        ix.add(
            "crm",
            "crm.customers#1".into(),
            ItemKind::Structured,
            "acme corporation west gold customer",
        );
        ix.add(
            "docs",
            "docs#1".into(),
            ItemKind::Document,
            "contract renewal for acme corporation signed 2005",
        );
        ix.add(
            "docs",
            "docs#2".into(),
            ItemKind::Document,
            "umbrella invoice overdue",
        );
        ix
    }

    #[test]
    fn scores_rank_by_relevance() {
        let ix = index();
        let hits = ix.score("acme contract");
        assert_eq!(hits.len(), 2);
        // docs#1 mentions both terms; crm row only one.
        assert_eq!(ix.item(hits[0].0).item_ref, "docs#1");
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn rare_terms_weigh_more() {
        let ix = index();
        let hits = ix.score("umbrella");
        assert_eq!(hits.len(), 1);
        assert_eq!(ix.item(hits[0].0).item_ref, "docs#2");
    }

    #[test]
    fn empty_query_or_index() {
        assert!(index().score("").is_empty());
        assert!(SearchIndex::new().score("acme").is_empty());
        assert!(index().score("zzzz_not_there").is_empty());
    }

    #[test]
    fn snippets_are_truncated() {
        let mut ix = SearchIndex::new();
        let long = "word ".repeat(100);
        ix.add("s", "r".into(), ItemKind::Document, &long);
        assert!(ix.item(0).snippet.len() <= 120);
    }
}
