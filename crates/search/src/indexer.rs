//! Index builders: pull content out of federated sources.

use eii_data::Result;
use eii_docstore::DocStore;
use eii_federation::{Federation, SourceQuery};

use crate::index::{ItemKind, SearchIndex};

/// Index every row of a federated table as a "business object". The dump
/// goes through the wrapper, so indexing cost shows up on the federation's
/// traffic ledger like any other extraction. Returns rows indexed.
pub fn index_federation_table(
    index: &mut SearchIndex,
    federation: &Federation,
    qualified_table: &str,
) -> Result<usize> {
    let (handle, table) = federation.resolve(qualified_table)?;
    let (batch, _cost) = handle.query(&SourceQuery::full_table(&table))?;
    let schema = batch.schema().clone();
    let source = qualified_table
        .split_once('.')
        .map(|(s, _)| s.to_string())
        .unwrap_or_default();
    let mut n = 0;
    for (i, row) in batch.rows().iter().enumerate() {
        let mut text = String::new();
        for (f, v) in schema.fields().iter().zip(row.values()) {
            if !v.is_null() {
                text.push_str(&f.name);
                text.push(' ');
                text.push_str(&v.to_string());
                text.push(' ');
            }
        }
        let item_ref = format!("{qualified_table}#{i}");
        index.add(&source, item_ref, ItemKind::Structured, &text);
        n += 1;
    }
    Ok(n)
}

/// Index every document of a store under a source name. Returns documents
/// indexed.
pub fn index_docstore(
    index: &mut SearchIndex,
    source: &str,
    store: &DocStore,
) -> Result<usize> {
    let mut n = 0;
    for id in store.ids() {
        let doc = store.get(id)?;
        let text = format!("{} {}", doc.title, doc.root.full_text());
        index.add(
            source,
            format!("{source}#{id}"),
            ItemKind::Document,
            &text,
        );
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema, SimClock};
    use eii_docstore::Document;
    use eii_federation::{LinkProfile, RelationalConnector, WireFormat};
    use eii_storage::{Database, TableDef};
    use std::sync::Arc;

    #[test]
    fn indexes_rows_and_documents() {
        let db = Database::new("crm", SimClock::new());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
        ]));
        let t = db
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        t.write().insert(row![1i64, "acme corporation"]).unwrap();
        t.write().insert(row![2i64, "globex"]).unwrap();
        let fed = Federation::new();
        fed.register(
            Arc::new(RelationalConnector::new(db)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();

        let store = DocStore::new();
        store.insert(Document::from_text("memo", "acme contract renewal"));

        let mut ix = SearchIndex::new();
        assert_eq!(
            index_federation_table(&mut ix, &fed, "crm.customers").unwrap(),
            2
        );
        assert_eq!(index_docstore(&mut ix, "docs", &store).unwrap(), 1);
        assert_eq!(ix.len(), 3);

        let hits = ix.score("acme");
        assert_eq!(hits.len(), 2, "one row + one document mention acme");
        // Indexing traffic was metered.
        assert!(fed.ledger().traffic("crm").bytes > 0);
    }
}
