//! # eii-search
//!
//! Enterprise search (Sikka §8): "the goal of enterprise search is to enable
//! search across documents, business objects and structured data in all the
//! applications in an enterprise" — with security: "ensuring that only
//! authorized users get access to the information they seek, continues to be
//! an underserved area".
//!
//! A [`SearchIndex`] holds TF-IDF postings over *items*: structured rows
//! rendered as text ("business objects") and documents. [`EnterpriseSearch`]
//! evaluates ranked queries and applies per-source ACLs from the catalog on
//! every hit.

pub mod index;
pub mod indexer;
pub mod search;

pub use index::{IndexedItem, ItemKind, SearchIndex};
pub use indexer::{index_docstore, index_federation_table};
pub use search::{EnterpriseSearch, Hit, SearchStats};
