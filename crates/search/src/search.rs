//! The search front end with security filtering.

use eii_catalog::Catalog;
use eii_data::Result;

use crate::index::{ItemKind, SearchIndex};

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    pub source: String,
    pub item_ref: String,
    pub kind: ItemKind,
    pub score: f64,
    pub snippet: String,
}

/// Diagnostics of one search evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Items that matched before security filtering.
    pub candidates: usize,
    /// Matches removed because the role lacks access to their source.
    pub filtered_out: usize,
}

/// Federated search with per-source access control.
pub struct EnterpriseSearch {
    index: SearchIndex,
    catalog: Catalog,
}

impl EnterpriseSearch {
    /// Wrap an index with the catalog holding the ACLs.
    pub fn new(index: SearchIndex, catalog: Catalog) -> Self {
        EnterpriseSearch { index, catalog }
    }

    /// The underlying index.
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }

    /// Ranked search as `role`. Every hit is checked against the source
    /// ACL — results never leak restricted sources, even in snippets.
    pub fn search(&self, query: &str, role: &str, limit: usize) -> Result<(Vec<Hit>, SearchStats)> {
        let scored = self.index.score(query);
        let mut stats = SearchStats {
            candidates: scored.len(),
            filtered_out: 0,
        };
        let mut hits = Vec::new();
        for (id, score) in scored {
            let item = self.index.item(id);
            if !self.catalog.allowed(&item.source, role) {
                stats.filtered_out += 1;
                continue;
            }
            hits.push(Hit {
                source: item.source.clone(),
                item_ref: item.item_ref.clone(),
                kind: item.kind,
                score,
                snippet: item.snippet.clone(),
            });
            if hits.len() >= limit {
                break;
            }
        }
        Ok((hits, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> EnterpriseSearch {
        let mut ix = SearchIndex::new();
        ix.add(
            "crm",
            "crm.customers#1".into(),
            ItemKind::Structured,
            "acme corporation gold",
        );
        ix.add(
            "hr",
            "hr.employees#7".into(),
            ItemKind::Structured,
            "jamie acme liaison salary 90000",
        );
        ix.add(
            "docs",
            "docs#1".into(),
            ItemKind::Document,
            "acme contract renewal terms",
        );
        let catalog = Catalog::new();
        catalog.grant("hr", "hr-admin");
        EnterpriseSearch::new(ix, catalog)
    }

    #[test]
    fn unprivileged_role_never_sees_hr() {
        let s = setup();
        let (hits, stats) = s.search("acme", "sales", 10).unwrap();
        assert_eq!(stats.candidates, 3);
        assert_eq!(stats.filtered_out, 1);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.source != "hr"));
    }

    #[test]
    fn privileged_role_sees_everything() {
        let s = setup();
        let (hits, stats) = s.search("acme", "hr-admin", 10).unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(stats.filtered_out, 0);
        assert!(hits.iter().any(|h| h.source == "hr"));
    }

    #[test]
    fn result_mix_spans_kinds() {
        let s = setup();
        let (hits, _) = s.search("acme", "hr-admin", 10).unwrap();
        assert!(hits.iter().any(|h| h.kind == ItemKind::Structured));
        assert!(hits.iter().any(|h| h.kind == ItemKind::Document));
    }

    #[test]
    fn limit_truncates_after_filtering() {
        let s = setup();
        let (hits, _) = s.search("acme", "sales", 1).unwrap();
        assert_eq!(hits.len(), 1);
    }
}
