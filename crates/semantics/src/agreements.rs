//! Data-service agreements — the "data supply chain" of Rosenthal §7:
//! "One needs agreements that capture the obligations of each party in a
//! formal language. ... the provider may be obligated to provide data of a
//! specified quality, and to notify the consumer if reported data changes.
//! The consumer may be obligated to protect the data, to use it only for a
//! specified purpose. Data offers opportunities unavailable for arbitrary
//! services, e.g., detecting if an existing agreement covers part of your
//! data and automated violation detection for some conditions."
//!
//! [`DataAgreement`] is that formal language; [`DataAgreement::check`] is
//! the automated violation detector; [`AgreementRegistry::covering`] is the
//! coverage query.

use std::collections::BTreeMap;

use eii_data::{Batch, Value};

/// One obligation of a data-supply agreement.
#[derive(Debug, Clone, PartialEq)]
pub enum Obligation {
    /// Provider: delivered data may be at most this stale.
    MaxStalenessMs(i64),
    /// Provider: at most this fraction of NULLs in the column.
    MaxNullFraction { column: String, fraction: f64 },
    /// Provider: deliveries carry at least this many rows (empty feeds are
    /// usually broken feeds).
    MinRowsPerDelivery(usize),
    /// Provider: changes must be announced on this topic.
    NotifyOnChange { topic: String },
    /// Consumer: the data may only be used for these purposes.
    AllowedPurposes(Vec<String>),
}

impl Obligation {
    /// Short description for violation reports.
    pub fn describe(&self) -> String {
        match self {
            Obligation::MaxStalenessMs(ms) => format!("staleness <= {ms} ms"),
            Obligation::MaxNullFraction { column, fraction } => {
                format!("null fraction of '{column}' <= {fraction}")
            }
            Obligation::MinRowsPerDelivery(n) => format!("delivery >= {n} rows"),
            Obligation::NotifyOnChange { topic } => format!("change notice on '{topic}'"),
            Obligation::AllowedPurposes(p) => format!("purpose in {{{}}}", p.join(", ")),
        }
    }
}

/// What actually happened in one delivery (built from real batches and
/// clocks by the caller; see [`DeliveryObservation::from_batch`]).
#[derive(Debug, Clone, Default)]
pub struct DeliveryObservation {
    /// Age of the delivered data.
    pub staleness_ms: i64,
    /// Rows delivered.
    pub rows: usize,
    /// Per-column NULL fraction.
    pub null_fractions: BTreeMap<String, f64>,
    /// Topics on which change notices were published since last delivery.
    pub notified_topics: Vec<String>,
    /// What the consumer used the data for.
    pub purpose: String,
}

impl DeliveryObservation {
    /// Derive row count and null fractions from a delivered batch.
    pub fn from_batch(batch: &Batch, staleness_ms: i64, purpose: &str) -> Self {
        let mut null_fractions = BTreeMap::new();
        let n = batch.num_rows().max(1);
        for (i, f) in batch.schema().fields().iter().enumerate() {
            let nulls = batch
                .column(i)
                .filter(|v| matches!(v, Value::Null))
                .count();
            null_fractions.insert(f.name.clone(), nulls as f64 / n as f64);
        }
        DeliveryObservation {
            staleness_ms,
            rows: batch.num_rows(),
            null_fractions,
            notified_topics: Vec::new(),
            purpose: purpose.to_string(),
        }
    }
}

/// A detected breach of one obligation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub obligation: String,
    pub detail: String,
}

/// A provider-consumer data-supply agreement over one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DataAgreement {
    pub provider: String,
    pub consumer: String,
    /// The dataset covered, as `source.table` (or a view name).
    pub dataset: String,
    pub obligations: Vec<Obligation>,
}

impl DataAgreement {
    /// Builder-style constructor.
    pub fn new(
        provider: impl Into<String>,
        consumer: impl Into<String>,
        dataset: impl Into<String>,
    ) -> Self {
        DataAgreement {
            provider: provider.into(),
            consumer: consumer.into(),
            dataset: dataset.into(),
            obligations: Vec::new(),
        }
    }

    /// Add an obligation.
    pub fn obligation(mut self, o: Obligation) -> Self {
        self.obligations.push(o);
        self
    }

    /// Automated violation detection for one delivery.
    pub fn check(&self, obs: &DeliveryObservation) -> Vec<Violation> {
        let mut out = Vec::new();
        for o in &self.obligations {
            let breach = match o {
                Obligation::MaxStalenessMs(max) => (obs.staleness_ms > *max)
                    .then(|| format!("delivered data was {} ms old", obs.staleness_ms)),
                Obligation::MaxNullFraction { column, fraction } => {
                    let actual = obs.null_fractions.get(column).copied().unwrap_or(0.0);
                    (actual > *fraction)
                        .then(|| format!("'{column}' was {actual:.2} NULL"))
                }
                Obligation::MinRowsPerDelivery(min) => (obs.rows < *min)
                    .then(|| format!("delivery carried only {} rows", obs.rows)),
                Obligation::NotifyOnChange { topic } => {
                    (!obs.notified_topics.iter().any(|t| t == topic))
                        .then(|| format!("no change notice seen on '{topic}'"))
                }
                Obligation::AllowedPurposes(purposes) => {
                    (!purposes.iter().any(|p| p == &obs.purpose))
                        .then(|| format!("data used for '{}'", obs.purpose))
                }
            };
            if let Some(detail) = breach {
                out.push(Violation {
                    obligation: o.describe(),
                    detail,
                });
            }
        }
        out
    }
}

/// All agreements in force across the enterprise.
#[derive(Debug, Clone, Default)]
pub struct AgreementRegistry {
    agreements: Vec<DataAgreement>,
}

impl AgreementRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        AgreementRegistry::default()
    }

    /// File an agreement.
    pub fn file(&mut self, agreement: DataAgreement) {
        self.agreements.push(agreement);
    }

    /// Number of agreements on file.
    pub fn len(&self) -> usize {
        self.agreements.len()
    }

    /// True when no agreements are filed.
    pub fn is_empty(&self) -> bool {
        self.agreements.is_empty()
    }

    /// Rosenthal's coverage query: does an existing agreement already cover
    /// this consumer's use of this dataset?
    pub fn covering(&self, consumer: &str, dataset: &str, purpose: &str) -> Option<&DataAgreement> {
        self.agreements.iter().find(|a| {
            a.consumer == consumer
                && a.dataset == dataset
                && a.obligations.iter().all(|o| match o {
                    Obligation::AllowedPurposes(ps) => ps.iter().any(|p| p == purpose),
                    _ => true,
                })
        })
    }

    /// Every agreement naming this dataset (provider-side impact analysis:
    /// who must I tell before changing this feed?).
    pub fn consumers_of(&self, dataset: &str) -> Vec<&str> {
        self.agreements
            .iter()
            .filter(|a| a.dataset == dataset)
            .map(|a| a.consumer.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Row, Schema};
    use std::sync::Arc;

    fn agreement() -> DataAgreement {
        DataAgreement::new("crm", "analytics", "crm.customers")
            .obligation(Obligation::MaxStalenessMs(60_000))
            .obligation(Obligation::MaxNullFraction {
                column: "region".into(),
                fraction: 0.1,
            })
            .obligation(Obligation::MinRowsPerDelivery(2))
            .obligation(Obligation::NotifyOnChange {
                topic: "crm.changed".into(),
            })
            .obligation(Obligation::AllowedPurposes(vec![
                "reporting".into(),
                "forecasting".into(),
            ]))
    }

    fn clean_obs() -> DeliveryObservation {
        DeliveryObservation {
            staleness_ms: 1_000,
            rows: 10,
            null_fractions: BTreeMap::from([("region".to_string(), 0.0)]),
            notified_topics: vec!["crm.changed".into()],
            purpose: "reporting".into(),
        }
    }

    #[test]
    fn clean_delivery_has_no_violations() {
        assert!(agreement().check(&clean_obs()).is_empty());
    }

    #[test]
    fn each_obligation_detects_its_breach() {
        let a = agreement();
        let mut obs = clean_obs();
        obs.staleness_ms = 120_000;
        obs.rows = 1;
        obs.null_fractions.insert("region".into(), 0.5);
        obs.notified_topics.clear();
        obs.purpose = "marketing-resale".into();
        let violations = a.check(&obs);
        assert_eq!(violations.len(), 5, "{violations:?}");
        assert!(violations.iter().any(|v| v.detail.contains("120000 ms old")));
        assert!(violations.iter().any(|v| v.detail.contains("marketing-resale")));
    }

    #[test]
    fn observation_from_batch_computes_null_fractions() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("region", DataType::Str),
        ]));
        let batch = Batch::new(
            schema,
            vec![
                row![1i64, "west"],
                Row::new(vec![Value::Int(2), Value::Null]),
            ],
        );
        let obs = DeliveryObservation::from_batch(&batch, 5, "reporting");
        assert_eq!(obs.rows, 2);
        assert_eq!(obs.null_fractions["region"], 0.5);
        assert_eq!(obs.null_fractions["id"], 0.0);
    }

    #[test]
    fn coverage_query_matches_consumer_dataset_and_purpose() {
        let mut reg = AgreementRegistry::new();
        reg.file(agreement());
        assert!(reg
            .covering("analytics", "crm.customers", "reporting")
            .is_some());
        assert!(reg
            .covering("analytics", "crm.customers", "resale")
            .is_none(), "purpose not allowed");
        assert!(reg.covering("analytics", "hr.employees", "reporting").is_none());
        assert!(reg.covering("someone-else", "crm.customers", "reporting").is_none());
    }

    #[test]
    fn impact_analysis_lists_consumers() {
        let mut reg = AgreementRegistry::new();
        reg.file(agreement());
        reg.file(DataAgreement::new("crm", "billing", "crm.customers"));
        reg.file(DataAgreement::new("hr", "facilities", "hr.employees"));
        let mut consumers = reg.consumers_of("crm.customers");
        consumers.sort_unstable();
        assert_eq!(consumers, vec!["analytics", "billing"]);
    }
}
