//! The administration-cost model.
//!
//! Ashish §2: "the investment in schema management per new source integrated
//! ... are reasons why user costs increase directly (linearly) with the user
//! benefit". To reproduce that economics deterministically, every
//! administrative act in the semantics layer charges an [`AdminLedger`].

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Categories of administrative work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AdminOp {
    /// Registering/declaring a schema with the system.
    SchemaRegistration,
    /// Creating one element-to-element mapping (reviewed by a human).
    MappingCreated,
    /// Repairing a mapping after a schema change.
    MappingRepaired,
    /// Deleting a mapping made obsolete by a change.
    MappingDeleted,
    /// Defining or extending an ontology concept.
    ConceptAuthored,
    /// Onboarding ceremony for a new source (accounts, credentials, ...).
    SourceOnboarded,
}

impl AdminOp {
    /// Relative human effort of the operation (arbitrary "admin units";
    /// reviewing a mapping is the expensive part).
    pub fn effort(self) -> f64 {
        match self {
            AdminOp::SchemaRegistration => 2.0,
            AdminOp::MappingCreated => 5.0,
            AdminOp::MappingRepaired => 3.0,
            AdminOp::MappingDeleted => 1.0,
            AdminOp::ConceptAuthored => 4.0,
            AdminOp::SourceOnboarded => 8.0,
        }
    }
}

/// A shared, append-only meter of administrative work.
#[derive(Debug, Clone, Default)]
pub struct AdminLedger {
    counts: Arc<Mutex<BTreeMap<AdminOp, usize>>>,
}

impl AdminLedger {
    /// Fresh ledger.
    pub fn new() -> Self {
        AdminLedger::default()
    }

    /// Record `n` operations of one kind.
    pub fn charge(&self, op: AdminOp, n: usize) {
        *self.counts.lock().entry(op).or_insert(0) += n;
    }

    /// Count of one kind.
    pub fn count(&self, op: AdminOp) -> usize {
        self.counts.lock().get(&op).copied().unwrap_or(0)
    }

    /// Total operations of all kinds.
    pub fn total_ops(&self) -> usize {
        self.counts.lock().values().sum()
    }

    /// Effort-weighted total.
    pub fn total_effort(&self) -> f64 {
        self.counts
            .lock()
            .iter()
            .map(|(op, n)| op.effort() * *n as f64)
            .sum()
    }

    /// Snapshot for reports.
    pub fn snapshot(&self) -> Vec<(AdminOp, usize)> {
        self.counts.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.counts.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_weight() {
        let ledger = AdminLedger::new();
        ledger.charge(AdminOp::MappingCreated, 3);
        ledger.charge(AdminOp::SchemaRegistration, 1);
        assert_eq!(ledger.count(AdminOp::MappingCreated), 3);
        assert_eq!(ledger.total_ops(), 4);
        assert!((ledger.total_effort() - (3.0 * 5.0 + 2.0)).abs() < 1e-9);
        ledger.reset();
        assert_eq!(ledger.total_ops(), 0);
    }

    #[test]
    fn clones_share_state() {
        let a = AdminLedger::new();
        let b = a.clone();
        a.charge(AdminOp::SourceOnboarded, 1);
        assert_eq!(b.count(AdminOp::SourceOnboarded), 1);
    }
}
