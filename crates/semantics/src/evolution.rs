//! Schema evolution and the agility metric.
//!
//! Rosenthal §7: "Research question: Provide ways to measure data
//! integration agility, either analytically or by experiment. We want a
//! measure for predictable changes such as adding attributes or tables, and
//! changing attribute representations." [`measure_agility`] is exactly that
//! experiment: apply a change script, meter the repair work.

use eii_data::{DataType, Result};

use crate::registry::MappingRegistry;

/// A predictable schema change, in Rosenthal's list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaChange {
    AddColumn { name: String, data_type: DataType },
    RemoveColumn { name: String },
    RenameColumn { from: String, to: String },
    /// "Changing attribute representations."
    ChangeType { name: String, data_type: DataType },
}

/// The agility measurement of one registry under one change script.
#[derive(Debug, Clone, PartialEq)]
pub struct AgilityReport {
    /// Changes applied.
    pub changes: usize,
    /// Mappings touched (repaired, deleted, or created) in total.
    pub mappings_touched: usize,
    /// Effort-weighted admin cost incurred by the script.
    pub admin_effort: f64,
    /// The agility metric: mappings touched per change (lower = more
    /// agile).
    pub touched_per_change: f64,
}

/// Apply `(schema, change)` pairs to a registry and meter the repair work.
pub fn measure_agility<R: MappingRegistry>(
    registry: &mut R,
    script: &[(String, SchemaChange)],
) -> Result<AgilityReport> {
    let effort_before = registry.ledger().total_effort();
    let mut touched = 0usize;
    for (schema, change) in script {
        touched += registry.apply_change(schema, change)?;
    }
    let admin_effort = registry.ledger().total_effort() - effort_before;
    Ok(AgilityReport {
        changes: script.len(),
        mappings_touched: touched,
        admin_effort,
        touched_per_change: if script.is_empty() {
            0.0
        } else {
            touched as f64 / script.len() as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AdminLedger;
    use crate::ontology::enterprise_ontology;
    use crate::registry::{HubRegistry, PairwiseRegistry, SourceSchema};

    fn schemas(n: usize) -> Vec<SourceSchema> {
        (0..n)
            .map(|i| {
                SourceSchema::new(
                    format!("sys{i}"),
                    vec![
                        ("cust_id", DataType::Int),
                        ("cust_nm", DataType::Str),
                        ("region", DataType::Str),
                    ],
                )
            })
            .collect()
    }

    fn script() -> Vec<(String, SchemaChange)> {
        vec![
            (
                "sys0".to_string(),
                SchemaChange::RenameColumn {
                    from: "cust_nm".into(),
                    to: "customer_name".into(),
                },
            ),
            (
                "sys0".to_string(),
                SchemaChange::ChangeType {
                    name: "cust_id".into(),
                    data_type: DataType::Str,
                },
            ),
            (
                "sys1".to_string(),
                SchemaChange::AddColumn {
                    name: "segment".into(),
                    data_type: DataType::Str,
                },
            ),
        ]
    }

    #[test]
    fn hub_is_more_agile_than_pairwise() {
        let mut pw = PairwiseRegistry::new(AdminLedger::new());
        let mut hub = HubRegistry::new(enterprise_ontology(), AdminLedger::new());
        for s in schemas(8) {
            pw.register(s.clone()).unwrap();
            hub.register(s).unwrap();
        }
        let pw_report = measure_agility(&mut pw, &script()).unwrap();
        let hub_report = measure_agility(&mut hub, &script()).unwrap();
        assert!(
            hub_report.touched_per_change < pw_report.touched_per_change,
            "hub {:?} vs pairwise {:?}",
            hub_report,
            pw_report
        );
        assert!(hub_report.admin_effort < pw_report.admin_effort);
    }

    #[test]
    fn empty_script_reports_zero() {
        let mut pw = PairwiseRegistry::new(AdminLedger::new());
        pw.register(schemas(1).remove(0)).unwrap();
        let r = measure_agility(&mut pw, &[]).unwrap();
        assert_eq!(r.changes, 0);
        assert_eq!(r.touched_per_change, 0.0);
    }

    #[test]
    fn change_to_missing_schema_errors() {
        let mut pw = PairwiseRegistry::new(AdminLedger::new());
        let err = measure_agility(
            &mut pw,
            &[(
                "ghost".to_string(),
                SchemaChange::RemoveColumn { name: "x".into() },
            )],
        )
        .unwrap_err();
        assert_eq!(err.kind(), "not_found");
    }
}
