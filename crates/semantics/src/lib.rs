//! # eii-semantics
//!
//! The meta-data / semantic-heterogeneity layer the paper keeps returning
//! to: Halevy §1 ("the success of the industry will depend to a large extent
//! on delivering useful tools ... for meta-data management and schema
//! heterogeneity"), Pollock §6 ("so long as semantics are in compiled
//! software ... we will forever run into 'information interoperability'
//! problems"), Rosenthal §7 ("It's the metadata, stupid! ... Provide ways to
//! measure data integration agility"), and Ashish §2 (the economics of
//! schema administration).
//!
//! Pieces:
//! - [`AdminLedger`]: meters every administration operation (schema
//!   registrations, mappings created/repaired) — the unit the cost
//!   experiments (E2, E7) are denominated in;
//! - [`Ontology`]: a concept graph with inheritance — the shared vocabulary
//!   of the hub topology;
//! - [`matcher`]: name-based schema matching (token + bigram similarity with
//!   abbreviation handling);
//! - [`PairwiseRegistry`] / [`HubRegistry`]: the two mapping topologies —
//!   N(N-1)/2 pairwise mappings versus N mappings to a hub ontology;
//! - [`evolution`]: schema-change operations and the **agility metric**
//!   (repair operations per change);
//! - [`agreements`]: data-service agreements — formal provider/consumer
//!   obligations with automated violation detection (Rosenthal's "data
//!   supply chain").

pub mod agreements;
pub mod cost;
pub mod evolution;
pub mod matcher;
pub mod ontology;
pub mod registry;

pub use agreements::{AgreementRegistry, DataAgreement, DeliveryObservation, Obligation, Violation};
pub use cost::{AdminLedger, AdminOp};
pub use evolution::{measure_agility, AgilityReport, SchemaChange};
pub use matcher::{match_schemas, name_similarity};
pub use ontology::{Concept, Ontology};
pub use registry::{HubRegistry, MappingRegistry, PairwiseRegistry, SourceSchema};
