//! Name-based schema matching.
//!
//! Splits identifiers into tokens (snake_case, camelCase), expands common
//! enterprise abbreviations, and scores candidate pairs by token overlap
//! with a character-bigram fallback for near-miss tokens. This is the
//! "semi-manual approach" Sikka warns does not scale — which is exactly why
//! the experiments meter how often humans must review its output.

use std::collections::BTreeSet;

use eii_data::DataType;

/// Expand well-known abbreviations to canonical tokens.
fn expand(token: &str) -> &str {
    match token {
        "cust" | "cst" => "customer",
        "nm" | "nme" => "name",
        "id" | "ident" | "identifier" | "no" | "num" => "identifier",
        "addr" => "address",
        "amt" => "amount",
        "qty" => "quantity",
        "dept" => "department",
        "emp" => "employee",
        "loc" => "location",
        "sev" => "severity",
        "ord" => "order",
        "tkt" => "ticket",
        "dt" | "date" | "ts" | "at" => "time",
        "tot" | "total" => "total",
        "reg" => "region",
        other => other,
    }
}

/// Tokenize an identifier: `custNm`, `cust_nm`, `CUST-NM` all become
/// `{customer, name}`.
fn tokens(ident: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for c in ident.chars() {
        if c.is_alphanumeric() {
            if c.is_uppercase() && prev_lower && !current.is_empty() {
                out.insert(expand(&current.to_lowercase()).to_string());
                current.clear();
            }
            prev_lower = c.is_lowercase() || c.is_numeric();
            current.push(c);
        } else {
            if !current.is_empty() {
                out.insert(expand(&current.to_lowercase()).to_string());
                current.clear();
            }
            prev_lower = false;
        }
    }
    if !current.is_empty() {
        out.insert(expand(&current.to_lowercase()).to_string());
    }
    out
}

fn bigrams(s: &str) -> BTreeSet<(char, char)> {
    let chars: Vec<char> = s.chars().collect();
    chars.windows(2).map(|w| (w[0], w[1])).collect()
}

fn token_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let (ba, bb) = (bigrams(a), bigrams(b));
    if ba.is_empty() || bb.is_empty() {
        return 0.0;
    }
    let inter = ba.intersection(&bb).count();
    2.0 * inter as f64 / (ba.len() + bb.len()) as f64
}

/// Similarity of two identifiers in [0, 1]: greedy best-pair token matching
/// normalized by the *smaller* token count, so a qualified name still
/// matches its bare counterpart (`cust_id` ↔ `identifier`).
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let (ta, tb) = (tokens(a), tokens(b));
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    // Global best-first injective assignment so a strong pair is never
    // starved by a weak one consuming its token.
    let ta: Vec<&String> = ta.iter().collect();
    let tb: Vec<&String> = tb.iter().collect();
    let mut scored: Vec<(usize, usize, f64)> = Vec::new();
    for (i, t) in ta.iter().enumerate() {
        for (j, u) in tb.iter().enumerate() {
            let s = token_similarity(t, u);
            if s >= 0.3 {
                scored.push((i, j, s));
            }
        }
    }
    scored.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut used_a = vec![false; ta.len()];
    let mut used_b = vec![false; tb.len()];
    let mut total = 0.0;
    for (i, j, s) in scored {
        if used_a[i] || used_b[j] {
            continue;
        }
        used_a[i] = true;
        used_b[j] = true;
        total += s;
    }
    total / ta.len().min(tb.len()) as f64
}

/// A proposed correspondence between two schema elements.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchProposal {
    pub left: String,
    pub right: String,
    pub score: f64,
    /// Types agree (unifiable) — mismatches need a cast mapping.
    pub type_compatible: bool,
}

/// Match two column lists: greedy best-first assignment above `threshold`.
pub fn match_schemas(
    left: &[(String, DataType)],
    right: &[(String, DataType)],
    threshold: f64,
) -> Vec<MatchProposal> {
    let mut scored: Vec<(usize, usize, f64)> = Vec::new();
    for (i, (ln, _)) in left.iter().enumerate() {
        for (j, (rn, _)) in right.iter().enumerate() {
            let s = name_similarity(ln, rn);
            if s >= threshold {
                scored.push((i, j, s));
            }
        }
    }
    scored.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut used_l = BTreeSet::new();
    let mut used_r = BTreeSet::new();
    let mut out = Vec::new();
    for (i, j, s) in scored {
        if used_l.contains(&i) || used_r.contains(&j) {
            continue;
        }
        used_l.insert(i);
        used_r.insert(j);
        out.push(MatchProposal {
            left: left[i].0.clone(),
            right: right[j].0.clone(),
            score: s,
            type_compatible: left[i].1.unify(right[j].1).is_some(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenization_handles_cases_and_abbreviations() {
        assert_eq!(tokens("cust_nm"), tokens("CustomerName"));
        assert_eq!(tokens("custId"), tokens("customer_identifier"));
        assert!(tokens("order-total").contains("total"));
    }

    #[test]
    fn similarity_recognizes_renames() {
        assert!(name_similarity("cust_nm", "customer_name") > 0.9);
        assert!(name_similarity("emp_dept", "employee_department") > 0.9);
        assert!(name_similarity("region", "severity") < 0.5);
        assert!(name_similarity("customer_name", "customer_region") > 0.3);
    }

    #[test]
    fn match_schemas_is_injective() {
        let left = vec![
            ("cust_id".to_string(), DataType::Int),
            ("cust_nm".to_string(), DataType::Str),
            ("reg".to_string(), DataType::Str),
        ];
        let right = vec![
            ("customer_identifier".to_string(), DataType::Int),
            ("customer_name".to_string(), DataType::Str),
            ("region".to_string(), DataType::Str),
            ("unrelated_flag".to_string(), DataType::Bool),
        ];
        let m = match_schemas(&left, &right, 0.6);
        assert_eq!(m.len(), 3);
        let mut rights: Vec<&str> = m.iter().map(|p| p.right.as_str()).collect();
        rights.sort_unstable();
        rights.dedup();
        assert_eq!(rights.len(), 3, "no element matched twice");
        assert!(m.iter().all(|p| p.type_compatible));
    }

    #[test]
    fn type_incompatibility_is_flagged() {
        let left = vec![("amount".to_string(), DataType::Str)];
        let right = vec![("amount".to_string(), DataType::Float)];
        let m = match_schemas(&left, &right, 0.5);
        assert_eq!(m.len(), 1);
        assert!(!m[0].type_compatible);
    }

    #[test]
    fn threshold_filters_noise() {
        let left = vec![("alpha".to_string(), DataType::Int)];
        let right = vec![("omega".to_string(), DataType::Int)];
        assert!(match_schemas(&left, &right, 0.6).is_empty());
    }
}
