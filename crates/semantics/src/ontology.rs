//! A lightweight ontology: named concepts with typed properties and
//! single-inheritance is-a edges. This is the "formal semantics outside of
//! code" Pollock argues for, in the smallest shape that lets the hub mapping
//! topology work.

use std::collections::BTreeMap;

use eii_data::{DataType, EiiError, Result};

/// A concept: a named set of typed properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concept {
    pub name: String,
    /// Declared (non-inherited) properties.
    pub properties: Vec<(String, DataType)>,
    /// Parent concept, if any.
    pub is_a: Option<String>,
}

/// A concept graph.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    concepts: BTreeMap<String, Concept>,
}

impl Ontology {
    /// Empty ontology.
    pub fn new() -> Self {
        Ontology::default()
    }

    /// Add a root concept.
    pub fn concept(
        mut self,
        name: impl Into<String>,
        properties: Vec<(&str, DataType)>,
    ) -> Self {
        let name = name.into();
        self.concepts.insert(
            name.clone(),
            Concept {
                name,
                properties: properties
                    .into_iter()
                    .map(|(n, t)| (n.to_string(), t))
                    .collect(),
            is_a: None,
            },
        );
        self
    }

    /// Add a subconcept.
    pub fn subconcept(
        mut self,
        name: impl Into<String>,
        parent: impl Into<String>,
        properties: Vec<(&str, DataType)>,
    ) -> Self {
        let name = name.into();
        self.concepts.insert(
            name.clone(),
            Concept {
                name,
                properties: properties
                    .into_iter()
                    .map(|(n, t)| (n.to_string(), t))
                    .collect(),
                is_a: Some(parent.into()),
            },
        );
        self
    }

    /// Fetch a concept.
    pub fn get(&self, name: &str) -> Result<&Concept> {
        self.concepts
            .get(name)
            .ok_or_else(|| EiiError::NotFound(format!("concept {name}")))
    }

    /// All concept names.
    pub fn concept_names(&self) -> Vec<String> {
        self.concepts.keys().cloned().collect()
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True when there are no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Properties of a concept including inherited ones (parents first).
    pub fn properties_of(&self, name: &str) -> Result<Vec<(String, DataType)>> {
        let mut chain = Vec::new();
        let mut cursor = Some(name.to_string());
        let mut hops = 0;
        while let Some(n) = cursor {
            let c = self.get(&n)?;
            chain.push(c);
            cursor = c.is_a.clone();
            hops += 1;
            if hops > self.concepts.len() {
                return Err(EiiError::Internal(format!(
                    "is-a cycle involving concept {name}"
                )));
            }
        }
        let mut out = Vec::new();
        for c in chain.iter().rev() {
            out.extend(c.properties.iter().cloned());
        }
        Ok(out)
    }

    /// Is `a` a (transitive) subconcept of `b`?
    pub fn is_subconcept(&self, a: &str, b: &str) -> bool {
        let mut cursor = Some(a.to_string());
        let mut hops = 0;
        while let Some(n) = cursor {
            if n == b {
                return true;
            }
            cursor = self.concepts.get(&n).and_then(|c| c.is_a.clone());
            hops += 1;
            if hops > self.concepts.len() {
                return false;
            }
        }
        false
    }
}

/// The shared enterprise ontology used by examples and benches: parties,
/// customers, employees, orders, tickets.
pub fn enterprise_ontology() -> Ontology {
    Ontology::new()
        .concept(
            "Party",
            vec![("identifier", DataType::Int), ("name", DataType::Str)],
        )
        .subconcept(
            "Customer",
            "Party",
            vec![("region", DataType::Str), ("segment", DataType::Str)],
        )
        .subconcept(
            "Employee",
            "Party",
            vec![("department", DataType::Str), ("location", DataType::Str)],
        )
        .concept(
            "Order",
            vec![
                ("identifier", DataType::Int),
                ("customer", DataType::Int),
                ("total", DataType::Float),
                ("placed_at", DataType::Timestamp),
            ],
        )
        .concept(
            "Ticket",
            vec![
                ("identifier", DataType::Int),
                ("customer", DataType::Int),
                ("severity", DataType::Int),
            ],
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inheritance_collects_properties() {
        let o = enterprise_ontology();
        let props = o.properties_of("Customer").unwrap();
        let names: Vec<&str> = props.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["identifier", "name", "region", "segment"]);
    }

    #[test]
    fn subconcept_relation() {
        let o = enterprise_ontology();
        assert!(o.is_subconcept("Customer", "Party"));
        assert!(o.is_subconcept("Customer", "Customer"));
        assert!(!o.is_subconcept("Party", "Customer"));
        assert!(!o.is_subconcept("Order", "Party"));
    }

    #[test]
    fn missing_concept_not_found() {
        let o = Ontology::new();
        assert_eq!(o.get("X").unwrap_err().kind(), "not_found");
    }

    #[test]
    fn cycles_are_detected() {
        let o = Ontology::new()
            .subconcept("A", "B", vec![])
            .subconcept("B", "A", vec![]);
        assert_eq!(o.properties_of("A").unwrap_err().kind(), "internal");
        assert!(!o.is_subconcept("A", "Z"));
    }
}
