//! Mapping registries: the two topologies for relating N schemas.
//!
//! - [`PairwiseRegistry`]: every schema maps directly to every other —
//!   O(N²) mappings, and a change to one schema ripples into every
//!   partnership ("write enough code and I will connect every software
//!   system anywhere. But then things change." — Pollock §6).
//! - [`HubRegistry`]: every schema maps once to a shared ontology — O(N)
//!   mappings; changes are repaired against the hub alone.

use std::collections::BTreeMap;

use eii_data::{DataType, EiiError, Result};

use crate::cost::{AdminLedger, AdminOp};
use crate::evolution::SchemaChange;
use crate::matcher::match_schemas;
use crate::ontology::Ontology;

/// A source's relational shape, as the semantics layer sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSchema {
    pub name: String,
    pub columns: Vec<(String, DataType)>,
}

impl SourceSchema {
    /// Build from parts.
    pub fn new(name: impl Into<String>, columns: Vec<(&str, DataType)>) -> Self {
        SourceSchema {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        }
    }

    fn apply(&mut self, change: &SchemaChange) -> Result<()> {
        match change {
            SchemaChange::AddColumn { name, data_type } => {
                self.columns.push((name.clone(), *data_type));
            }
            SchemaChange::RemoveColumn { name } => {
                let before = self.columns.len();
                self.columns.retain(|(n, _)| n != name);
                if self.columns.len() == before {
                    return Err(EiiError::NotFound(format!(
                        "column {name} in schema {}",
                        self.name
                    )));
                }
            }
            SchemaChange::RenameColumn { from, to } => {
                let col = self
                    .columns
                    .iter_mut()
                    .find(|(n, _)| n == from)
                    .ok_or_else(|| {
                        EiiError::NotFound(format!("column {from} in schema {}", self.name))
                    })?;
                col.0 = to.clone();
            }
            SchemaChange::ChangeType { name, data_type } => {
                let col = self
                    .columns
                    .iter_mut()
                    .find(|(n, _)| n == name)
                    .ok_or_else(|| {
                        EiiError::NotFound(format!("column {name} in schema {}", self.name))
                    })?;
                col.1 = *data_type;
            }
        }
        Ok(())
    }
}

/// Common interface of the two topologies.
pub trait MappingRegistry {
    /// Register a new source schema, creating whatever mappings the
    /// topology needs. Charges the ledger.
    fn register(&mut self, schema: SourceSchema) -> Result<()>;

    /// Number of element-level mappings currently maintained.
    fn mapping_count(&self) -> usize;

    /// Translate a column of one schema into another schema's column, if a
    /// correspondence exists (directly or through the hub).
    fn correspondence(&self, from_schema: &str, column: &str, to_schema: &str)
        -> Option<String>;

    /// Apply a schema change, repairing mappings. Returns the number of
    /// mappings touched. Charges the ledger.
    fn apply_change(&mut self, schema: &str, change: &SchemaChange) -> Result<usize>;

    /// Registered schema names.
    fn schema_names(&self) -> Vec<String>;

    /// The admin-cost ledger.
    fn ledger(&self) -> &AdminLedger;
}

const MATCH_THRESHOLD: f64 = 0.55;

// ---------------------------------------------------------------- pairwise

/// Direct schema-to-schema mappings.
pub struct PairwiseRegistry {
    schemas: BTreeMap<String, SourceSchema>,
    /// (schema_a, schema_b) -> [(col_a, col_b)]; key ordered a < b.
    mappings: BTreeMap<(String, String), Vec<(String, String)>>,
    ledger: AdminLedger,
}

impl PairwiseRegistry {
    /// Empty registry on a ledger.
    pub fn new(ledger: AdminLedger) -> Self {
        PairwiseRegistry {
            schemas: BTreeMap::new(),
            mappings: BTreeMap::new(),
            ledger,
        }
    }

    fn pair_key(a: &str, b: &str) -> (String, String) {
        if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        }
    }

    /// Mapped pair aligned so `.0` belongs to `a`.
    fn pairs_between(&self, a: &str, b: &str) -> Vec<(String, String)> {
        let key = Self::pair_key(a, b);
        let Some(pairs) = self.mappings.get(&key) else {
            return Vec::new();
        };
        if key.0 == a {
            pairs.clone()
        } else {
            pairs.iter().map(|(x, y)| (y.clone(), x.clone())).collect()
        }
    }
}

impl MappingRegistry for PairwiseRegistry {
    fn register(&mut self, schema: SourceSchema) -> Result<()> {
        if self.schemas.contains_key(&schema.name) {
            return Err(EiiError::AlreadyExists(format!("schema {}", schema.name)));
        }
        self.ledger.charge(AdminOp::SourceOnboarded, 1);
        self.ledger.charge(AdminOp::SchemaRegistration, 1);
        for other in self.schemas.values() {
            let proposals = match_schemas(&schema.columns, &other.columns, MATCH_THRESHOLD);
            if proposals.is_empty() {
                continue;
            }
            self.ledger.charge(AdminOp::MappingCreated, proposals.len());
            let key = Self::pair_key(&schema.name, &other.name);
            let aligned: Vec<(String, String)> = proposals
                .into_iter()
                .map(|p| {
                    if key.0 == schema.name {
                        (p.left, p.right)
                    } else {
                        (p.right, p.left)
                    }
                })
                .collect();
            self.mappings.insert(key, aligned);
        }
        self.schemas.insert(schema.name.clone(), schema);
        Ok(())
    }

    fn mapping_count(&self) -> usize {
        self.mappings.values().map(Vec::len).sum()
    }

    fn correspondence(
        &self,
        from_schema: &str,
        column: &str,
        to_schema: &str,
    ) -> Option<String> {
        self.pairs_between(from_schema, to_schema)
            .into_iter()
            .find(|(a, _)| a == column)
            .map(|(_, b)| b)
    }

    fn apply_change(&mut self, schema: &str, change: &SchemaChange) -> Result<usize> {
        let s = self
            .schemas
            .get_mut(schema)
            .ok_or_else(|| EiiError::NotFound(format!("schema {schema}")))?;
        s.apply(change)?;
        let s = self.schemas.get(schema).expect("present").clone();
        let mut touched = 0;
        match change {
            SchemaChange::RenameColumn { from, to } => {
                for (key, pairs) in self.mappings.iter_mut() {
                    let mine_first = key.0 == schema;
                    if key.0 != schema && key.1 != schema {
                        continue;
                    }
                    for pair in pairs.iter_mut() {
                        let mine = if mine_first { &mut pair.0 } else { &mut pair.1 };
                        if mine == from {
                            *mine = to.clone();
                            touched += 1;
                        }
                    }
                }
                self.ledger.charge(AdminOp::MappingRepaired, touched);
            }
            SchemaChange::ChangeType { name, .. } => {
                for (key, pairs) in &self.mappings {
                    if key.0 != schema && key.1 != schema {
                        continue;
                    }
                    let mine_first = key.0 == schema;
                    touched += pairs
                        .iter()
                        .filter(|p| (if mine_first { &p.0 } else { &p.1 }) == name)
                        .count();
                }
                self.ledger.charge(AdminOp::MappingRepaired, touched);
            }
            SchemaChange::RemoveColumn { name } => {
                for (key, pairs) in self.mappings.iter_mut() {
                    if key.0 != schema && key.1 != schema {
                        continue;
                    }
                    let mine_first = key.0 == schema;
                    let before = pairs.len();
                    pairs.retain(|p| (if mine_first { &p.0 } else { &p.1 }) != name);
                    touched += before - pairs.len();
                }
                self.ledger.charge(AdminOp::MappingDeleted, touched);
            }
            SchemaChange::AddColumn { name, data_type } => {
                // Try to map the new column against every partner.
                let new_col = vec![(name.clone(), *data_type)];
                let partners: Vec<String> = self
                    .schemas
                    .keys()
                    .filter(|k| *k != schema)
                    .cloned()
                    .collect();
                for partner in partners {
                    let other = self.schemas.get(&partner).expect("present");
                    let proposals = match_schemas(&new_col, &other.columns, MATCH_THRESHOLD);
                    if let Some(p) = proposals.into_iter().next() {
                        let key = Self::pair_key(&s.name, &partner);
                        let aligned = if key.0 == s.name {
                            (p.left, p.right)
                        } else {
                            (p.right, p.left)
                        };
                        self.mappings.entry(key).or_default().push(aligned);
                        touched += 1;
                    }
                }
                self.ledger.charge(AdminOp::MappingCreated, touched);
            }
        }
        Ok(touched)
    }

    fn schema_names(&self) -> Vec<String> {
        self.schemas.keys().cloned().collect()
    }

    fn ledger(&self) -> &AdminLedger {
        &self.ledger
    }
}

// --------------------------------------------------------------------- hub

/// Schemas map once to a shared ontology concept.
pub struct HubRegistry {
    ontology: Ontology,
    schemas: BTreeMap<String, SourceSchema>,
    /// schema -> (concept, [(column, property)]).
    mappings: BTreeMap<String, (String, Vec<(String, String)>)>,
    ledger: AdminLedger,
}

impl HubRegistry {
    /// Registry over an ontology. Authoring the ontology itself is charged
    /// up front — the hub is not free, it just amortizes.
    pub fn new(ontology: Ontology, ledger: AdminLedger) -> Self {
        ledger.charge(AdminOp::ConceptAuthored, ontology.len());
        HubRegistry {
            ontology,
            schemas: BTreeMap::new(),
            mappings: BTreeMap::new(),
            ledger,
        }
    }

    /// Pick the concept whose properties best cover the schema.
    fn best_concept(&self, schema: &SourceSchema) -> Result<(String, Vec<(String, String)>)> {
        type Candidate = (String, Vec<(String, String)>, f64);
        let mut best: Option<Candidate> = None;
        for concept in self.ontology.concept_names() {
            let props = self.ontology.properties_of(&concept)?;
            let proposals = match_schemas(&schema.columns, &props, MATCH_THRESHOLD);
            let score: f64 = proposals.iter().map(|p| p.score).sum();
            let pairs: Vec<(String, String)> = proposals
                .into_iter()
                .map(|p| (p.left, p.right))
                .collect();
            if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                best = Some((concept, pairs, score));
            }
        }
        let (concept, pairs, score) = best.ok_or_else(|| {
            EiiError::NotFound("ontology has no concepts".to_string())
        })?;
        if score == 0.0 {
            return Err(EiiError::Plan(format!(
                "schema {} matches no ontology concept; author one first",
                schema.name
            )));
        }
        Ok((concept, pairs))
    }
}

impl MappingRegistry for HubRegistry {
    fn register(&mut self, schema: SourceSchema) -> Result<()> {
        if self.schemas.contains_key(&schema.name) {
            return Err(EiiError::AlreadyExists(format!("schema {}", schema.name)));
        }
        self.ledger.charge(AdminOp::SourceOnboarded, 1);
        self.ledger.charge(AdminOp::SchemaRegistration, 1);
        let (concept, pairs) = self.best_concept(&schema)?;
        self.ledger.charge(AdminOp::MappingCreated, pairs.len());
        self.mappings
            .insert(schema.name.clone(), (concept, pairs));
        self.schemas.insert(schema.name.clone(), schema);
        Ok(())
    }

    fn mapping_count(&self) -> usize {
        self.mappings.values().map(|(_, v)| v.len()).sum()
    }

    fn correspondence(
        &self,
        from_schema: &str,
        column: &str,
        to_schema: &str,
    ) -> Option<String> {
        let (from_concept, from_pairs) = self.mappings.get(from_schema)?;
        let (to_concept, to_pairs) = self.mappings.get(to_schema)?;
        // Composition through the hub requires a shared (or related)
        // concept vocabulary.
        if from_concept != to_concept
            && !self.ontology.is_subconcept(from_concept, to_concept)
            && !self.ontology.is_subconcept(to_concept, from_concept)
        {
            return None;
        }
        let property = from_pairs
            .iter()
            .find(|(c, _)| c == column)
            .map(|(_, p)| p)?;
        to_pairs
            .iter()
            .find(|(_, p)| p == property)
            .map(|(c, _)| c.clone())
    }

    fn apply_change(&mut self, schema: &str, change: &SchemaChange) -> Result<usize> {
        let s = self
            .schemas
            .get_mut(schema)
            .ok_or_else(|| EiiError::NotFound(format!("schema {schema}")))?;
        s.apply(change)?;
        let entry = self
            .mappings
            .get_mut(schema)
            .ok_or_else(|| EiiError::NotFound(format!("mapping for {schema}")))?;
        let mut touched = 0;
        match change {
            SchemaChange::RenameColumn { from, to } => {
                for (c, _) in entry.1.iter_mut() {
                    if c == from {
                        *c = to.clone();
                        touched += 1;
                    }
                }
                self.ledger.charge(AdminOp::MappingRepaired, touched);
            }
            SchemaChange::ChangeType { name, .. } => {
                touched = entry.1.iter().filter(|(c, _)| c == name).count();
                self.ledger.charge(AdminOp::MappingRepaired, touched);
            }
            SchemaChange::RemoveColumn { name } => {
                let before = entry.1.len();
                entry.1.retain(|(c, _)| c != name);
                touched = before - entry.1.len();
                self.ledger.charge(AdminOp::MappingDeleted, touched);
            }
            SchemaChange::AddColumn { name, data_type } => {
                let props = self.ontology.properties_of(&entry.0)?;
                let proposals = match_schemas(
                    &[(name.clone(), *data_type)],
                    &props,
                    MATCH_THRESHOLD,
                );
                if let Some(p) = proposals.into_iter().next() {
                    entry.1.push((p.left, p.right));
                    touched = 1;
                }
                self.ledger.charge(AdminOp::MappingCreated, touched);
            }
        }
        Ok(touched)
    }

    fn schema_names(&self) -> Vec<String> {
        self.schemas.keys().cloned().collect()
    }

    fn ledger(&self) -> &AdminLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::enterprise_ontology;

    fn customer_schema(i: usize) -> SourceSchema {
        // Each system spells the same concept differently.
        let spellings = [
            vec![("cust_id", DataType::Int), ("cust_nm", DataType::Str), ("reg", DataType::Str)],
            vec![("customerId", DataType::Int), ("customerName", DataType::Str), ("region", DataType::Str)],
            vec![("id", DataType::Int), ("name", DataType::Str), ("segment", DataType::Str)],
            vec![("CUST_NO", DataType::Int), ("NM", DataType::Str), ("REGION", DataType::Str)],
        ];
        SourceSchema {
            name: format!("sys{i}"),
            columns: spellings[i % spellings.len()]
                .iter()
                .map(|(n, t)| (n.to_string(), *t))
                .collect(),
        }
    }

    #[test]
    fn pairwise_mapping_count_grows_quadratically() {
        let ledger = AdminLedger::new();
        let mut reg = PairwiseRegistry::new(ledger);
        for i in 0..4 {
            reg.register(customer_schema(i)).unwrap();
        }
        // 4 schemas -> 6 pairs, each with >= 2 correspondences.
        assert!(reg.mapping_count() >= 12, "got {}", reg.mapping_count());
    }

    #[test]
    fn hub_mapping_count_grows_linearly() {
        let ledger = AdminLedger::new();
        let mut reg = HubRegistry::new(enterprise_ontology(), ledger);
        for i in 0..4 {
            reg.register(customer_schema(i)).unwrap();
        }
        // One mapping set per schema, each with <= columns entries.
        assert!(reg.mapping_count() <= 4 * 4, "got {}", reg.mapping_count());
        assert_eq!(reg.schema_names().len(), 4);
    }

    #[test]
    fn correspondence_translates_in_both_topologies() {
        let mut pw = PairwiseRegistry::new(AdminLedger::new());
        pw.register(customer_schema(0)).unwrap();
        pw.register(customer_schema(1)).unwrap();
        assert_eq!(
            pw.correspondence("sys0", "cust_nm", "sys1").as_deref(),
            Some("customerName")
        );
        assert_eq!(
            pw.correspondence("sys1", "customerName", "sys0").as_deref(),
            Some("cust_nm")
        );

        let mut hub = HubRegistry::new(enterprise_ontology(), AdminLedger::new());
        hub.register(customer_schema(0)).unwrap();
        hub.register(customer_schema(1)).unwrap();
        assert_eq!(
            hub.correspondence("sys0", "cust_nm", "sys1").as_deref(),
            Some("customerName")
        );
    }

    #[test]
    fn rename_repair_cost_scales_with_partners_only_in_pairwise() {
        let n = 6;
        let mut pw = PairwiseRegistry::new(AdminLedger::new());
        let mut hub = HubRegistry::new(enterprise_ontology(), AdminLedger::new());
        for i in 0..n {
            let mut s = customer_schema(0);
            s.name = format!("sys{i}");
            pw.register(s.clone()).unwrap();
            hub.register(s).unwrap();
        }
        let change = SchemaChange::RenameColumn {
            from: "cust_nm".into(),
            to: "customer_full_name".into(),
        };
        let pw_touched = pw.apply_change("sys0", &change).unwrap();
        let hub_touched = hub.apply_change("sys0", &change).unwrap();
        assert_eq!(pw_touched, n - 1, "one repair per partner");
        assert_eq!(hub_touched, 1, "one repair against the hub");
    }

    #[test]
    fn remove_column_deletes_mappings() {
        let mut pw = PairwiseRegistry::new(AdminLedger::new());
        pw.register(customer_schema(0)).unwrap();
        pw.register(customer_schema(1)).unwrap();
        let before = pw.mapping_count();
        let touched = pw
            .apply_change(
                "sys0",
                &SchemaChange::RemoveColumn { name: "reg".into() },
            )
            .unwrap();
        assert!(touched >= 1);
        assert_eq!(pw.mapping_count(), before - touched);
        assert_eq!(pw.correspondence("sys0", "reg", "sys1"), None);
    }

    #[test]
    fn unmatchable_schema_is_rejected_by_hub() {
        let mut hub = HubRegistry::new(enterprise_ontology(), AdminLedger::new());
        let weird = SourceSchema::new(
            "telemetry",
            vec![("xjq9", DataType::Float), ("zzz_flux", DataType::Float)],
        );
        assert_eq!(hub.register(weird).unwrap_err().kind(), "plan");
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut pw = PairwiseRegistry::new(AdminLedger::new());
        pw.register(customer_schema(0)).unwrap();
        assert_eq!(
            pw.register(customer_schema(0)).unwrap_err().kind(),
            "already_exists"
        );
    }
}
