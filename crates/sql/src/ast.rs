//! Statement AST produced by the parser and consumed by the planner.

use std::fmt;

use serde::{Deserialize, Serialize};

use eii_expr::{AggFunc, Expr};

/// A top-level statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// A query (`SELECT ...` possibly with `UNION ALL`).
    Query(SetQuery),
    /// `CREATE VIEW name AS <query>` — how mediated-schema relations are
    /// defined over source tables (GAV-style).
    CreateView { name: String, query: SetQuery },
    /// `SEARCH 'terms' [IN src1, src2] [LIMIT n]` — enterprise keyword
    /// search across structured and unstructured sources (Sikka §8).
    Search {
        terms: String,
        sources: Vec<String>,
        limit: Option<usize>,
    },
    /// `EXPLAIN [ANALYZE] <query>` — render the physical plan; with
    /// `ANALYZE`, also execute it and annotate each operator with actual
    /// rows, bytes shipped, and simulated time next to the estimates.
    Explain { analyze: bool, query: SetQuery },
}

/// A query with optional `UNION ALL` combinations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SetQuery {
    Select(Box<Query>),
    UnionAll(Box<SetQuery>, Box<SetQuery>),
}

impl SetQuery {
    /// Iterate over the leaf SELECT blocks left-to-right.
    pub fn selects(&self) -> Vec<&Query> {
        match self {
            SetQuery::Select(q) => vec![q],
            SetQuery::UnionAll(l, r) => {
                let mut v = l.selects();
                v.extend(r.selects());
                v
            }
        }
    }
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    /// FROM clause: cross-product of table references (each possibly a join
    /// tree). Empty for `SELECT 1`.
    pub from: Vec<TableRef>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    /// Subquery predicates pulled out of WHERE (top-level conjuncts only).
    pub subquery_preds: Vec<SubqueryPred>,
    /// Resolved against the output schema (aliases visible).
    pub having: Option<Expr>,
    /// Resolved against the output schema (aliases and ordinals visible).
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*` or `alias.*`.
    Wildcard { relation: Option<String> },
    /// An expression with optional alias.
    Expr { expr: SelectExpr, alias: Option<String> },
}

/// A select-list expression: scalar or aggregate call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectExpr {
    Scalar(Expr),
    Agg {
        func: AggFunc,
        /// `None` for `COUNT(*)`.
        arg: Option<Expr>,
        distinct: bool,
    },
}

impl SelectExpr {
    /// Display name when no alias is given.
    pub fn output_name(&self) -> String {
        match self {
            SelectExpr::Scalar(e) => e.output_name(),
            SelectExpr::Agg { func, arg, .. } => match arg {
                Some(a) => format!("{}({a})", func.name()),
                None => format!("{}(*)", func.name()),
            },
        }
    }
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableRef {
    /// A named table or view, optionally qualified by source
    /// (`crm.customers`) and optionally aliased.
    Table {
        name: String,
        alias: Option<String>,
    },
    /// A parenthesized subquery with mandatory alias.
    Subquery {
        query: Box<SetQuery>,
        alias: String,
    },
    /// An explicit join.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<Expr>,
    },
}

impl TableRef {
    /// The visible name of this reference (alias if present).
    pub fn visible_name(&self) -> Option<&str> {
        match self {
            TableRef::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

/// Join flavors. `Semi`/`Anti` are never written by users directly — the
/// planner produces them when desugaring `IN (SELECT ...)` / `EXISTS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
    /// Emit left rows with at least one match (output = left columns).
    Semi,
    /// Emit left rows with no match (output = left columns).
    Anti,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "INNER JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Cross => "CROSS JOIN",
            JoinKind::Semi => "SEMI JOIN",
            JoinKind::Anti => "ANTI JOIN",
        };
        f.write_str(s)
    }
}

/// A subquery predicate pulled out of the WHERE clause. Only allowed as a
/// top-level conjunct; the subquery must be uncorrelated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SubqueryPred {
    /// `expr [NOT] IN (SELECT single_column ...)`.
    ///
    /// Dialect note: `NOT IN` uses anti-join semantics — subquery NULLs do
    /// not veto rows the way standard SQL's three-valued `NOT IN` does.
    In {
        expr: Expr,
        query: SetQuery,
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)` — uncorrelated, so it acts as a global
    /// gate: all rows pass or none do.
    Exists { query: SetQuery, negated: bool },
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderItem {
    pub expr: Expr,
    pub asc: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_query_selects_flatten_in_order() {
        let q = |n: i64| {
            SetQuery::Select(Box::new(Query {
                distinct: false,
                items: vec![SelectItem::Expr {
                    expr: SelectExpr::Scalar(Expr::lit(n)),
                    alias: None,
                }],
                from: vec![],
                filter: None,
                group_by: vec![],
                subquery_preds: vec![],
                having: None,
                order_by: vec![],
                limit: None,
            }))
        };
        let u = SetQuery::UnionAll(
            Box::new(SetQuery::UnionAll(Box::new(q(1)), Box::new(q(2)))),
            Box::new(q(3)),
        );
        assert_eq!(u.selects().len(), 3);
    }

    #[test]
    fn visible_names() {
        let t = TableRef::Table {
            name: "customers".into(),
            alias: Some("c".into()),
        };
        assert_eq!(t.visible_name(), Some("c"));
        let t = TableRef::Table {
            name: "customers".into(),
            alias: None,
        };
        assert_eq!(t.visible_name(), Some("customers"));
    }

    #[test]
    fn agg_output_name() {
        let e = SelectExpr::Agg {
            func: AggFunc::CountStar,
            arg: None,
            distinct: false,
        };
        assert_eq!(e.output_name(), "COUNT(*)");
    }
}
