//! The SQL lexer.

use eii_data::{EiiError, Result};

/// A lexical token. Keywords are uppercased identifiers recognized by the
/// parser; the lexer only distinguishes shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Punctuation / operator.
    Symbol(Symbol),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
}

impl Token {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // Line comment.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => {
                            return Err(EiiError::Parse("unterminated string literal".into()))
                        }
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if matches!(chars.get(i), Some('e' | 'E')) {
                    let mut j = i + 1;
                    if matches!(chars.get(j), Some('+' | '-')) {
                        j += 1;
                    }
                    if chars.get(j).is_some_and(char::is_ascii_digit) {
                        is_float = true;
                        i = j;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let f = text
                        .parse::<f64>()
                        .map_err(|e| EiiError::Parse(format!("bad float '{text}': {e}")))?;
                    tokens.push(Token::Float(f));
                } else {
                    let n = text
                        .parse::<i64>()
                        .map_err(|e| EiiError::Parse(format!("bad integer '{text}': {e}")))?;
                    tokens.push(Token::Int(n));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            _ => {
                let (sym, len) = match (c, chars.get(i + 1)) {
                    ('<', Some('=')) => (Symbol::LtEq, 2),
                    ('<', Some('>')) => (Symbol::NotEq, 2),
                    ('>', Some('=')) => (Symbol::GtEq, 2),
                    ('!', Some('=')) => (Symbol::NotEq, 2),
                    ('(', _) => (Symbol::LParen, 1),
                    (')', _) => (Symbol::RParen, 1),
                    (',', _) => (Symbol::Comma, 1),
                    ('.', _) => (Symbol::Dot, 1),
                    ('*', _) => (Symbol::Star, 1),
                    ('+', _) => (Symbol::Plus, 1),
                    ('-', _) => (Symbol::Minus, 1),
                    ('/', _) => (Symbol::Slash, 1),
                    ('%', _) => (Symbol::Percent, 1),
                    ('=', _) => (Symbol::Eq, 1),
                    ('<', _) => (Symbol::Lt, 1),
                    ('>', _) => (Symbol::Gt, 1),
                    (';', _) => (Symbol::Semicolon, 1),
                    _ => {
                        return Err(EiiError::Parse(format!(
                            "unexpected character '{c}' at offset {i}"
                        )))
                    }
                };
                tokens.push(Token::Symbol(sym));
                i += len;
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_simple_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE a >= 1.5").unwrap();
        assert_eq!(toks.len(), 10);
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[9], Token::Float(1.5));
        assert_eq!(toks[8], Token::Symbol(Symbol::GtEq));
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'o''brien'").unwrap();
        assert_eq!(toks, vec![Token::Str("o'brien".into())]);
    }

    #[test]
    fn unterminated_string_fails() {
        assert_eq!(tokenize("'abc").unwrap_err().kind(), "parse");
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT -- comment here\n 1").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Token::Int(1));
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("1e3 2.5E-2 7").unwrap();
        assert_eq!(
            toks,
            vec![Token::Float(1e3), Token::Float(2.5e-2), Token::Int(7)]
        );
    }

    #[test]
    fn qualified_name_tokens() {
        let toks = tokenize("crm.customers").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1], Token::Symbol(Symbol::Dot));
    }

    #[test]
    fn both_not_eq_spellings() {
        assert_eq!(tokenize("<>").unwrap(), vec![Token::Symbol(Symbol::NotEq)]);
        assert_eq!(tokenize("!=").unwrap(), vec![Token::Symbol(Symbol::NotEq)]);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("SELECT @x").is_err());
    }
}
