//! # eii-sql
//!
//! The SQL front end of the platform: a hand-written lexer and recursive-
//! descent parser for the federated query language — a pragmatic SQL subset
//! with joins, subqueries in `FROM`, aggregation, `UNION ALL`, `CREATE VIEW`
//! (how mediated schemas are defined, following Draper's "views as the
//! central metaphor"), and a `SEARCH` statement for enterprise keyword search
//! (Sikka §8).
//!
//! Dialect notes (documented deviations from full SQL):
//! - `HAVING` and `ORDER BY` resolve against the *output* columns of the
//!   select list (use aliases: `SELECT dept, COUNT(*) AS n ... HAVING n > 2`).
//! - String literals use single quotes, doubled to escape (`'o''brien'`).

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    JoinKind, OrderItem, Query, SelectItem, SelectExpr, SetQuery, Statement, SubqueryPred,
    TableRef,
};
pub use lexer::{tokenize, Token};
pub use parser::{parse_expression, parse_query, parse_statement};
