//! Recursive-descent parser for the federated query language.

use eii_data::{DataType, EiiError, Result, Value};
use eii_expr::{AggFunc, BinaryOp, Expr, ScalarFunc};

use crate::ast::{
    JoinKind, OrderItem, Query, SelectExpr, SelectItem, SetQuery, Statement, SubqueryPred,
    TableRef,
};
use crate::lexer::{tokenize, Symbol, Token};

/// Parse a single statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, ..Parser::default() };
    let stmt = p.statement()?;
    p.skip_symbol(Symbol::Semicolon);
    p.expect_end()?;
    Ok(stmt)
}

/// Parse a query (`SELECT ... [UNION ALL ...]`).
pub fn parse_query(sql: &str) -> Result<SetQuery> {
    match parse_statement(sql)? {
        Statement::Query(q) => Ok(q),
        other => Err(EiiError::Parse(format!(
            "expected a query, found {other:?}"
        ))),
    }
}

/// Parse a standalone scalar expression (used by tests and by view tooling).
pub fn parse_expression(text: &str) -> Result<Expr> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, ..Parser::default() };
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

#[derive(Default)]
struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// WHERE-clause side channel for `IN (SELECT ...)` predicates.
    pending_subs: Vec<SubqueryPred>,
    /// True only while parsing a WHERE conjunct (where subquery predicates
    /// are legal).
    allow_subquery: bool,
    /// NOT consumed while parsing the current WHERE conjunct.
    term_not_used: bool,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn skip_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.skip_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {kw}")))
        }
    }

    fn at_symbol(&self, s: Symbol) -> bool {
        self.peek() == Some(&Token::Symbol(s))
    }

    fn skip_symbol(&mut self, s: Symbol) -> bool {
        if self.at_symbol(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> Result<()> {
        if self.skip_symbol(s) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("{s:?}")))
        }
    }

    fn expect_end(&self) -> Result<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(EiiError::Parse(format!(
                "unexpected trailing input starting at {t:?}"
            ))),
        }
    }

    fn unexpected(&self, wanted: &str) -> EiiError {
        match self.peek() {
            Some(t) => EiiError::Parse(format!("expected {wanted}, found {t:?}")),
            None => EiiError::Parse(format!("expected {wanted}, found end of input")),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(EiiError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // ---- statements ---------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("EXPLAIN") {
            self.pos += 1;
            let analyze = self.skip_kw("ANALYZE");
            let query = self.set_query()?;
            return Ok(Statement::Explain { analyze, query });
        }
        if self.at_kw("CREATE") {
            self.pos += 1;
            self.expect_kw("VIEW")?;
            let name = self.qualified_name()?;
            self.expect_kw("AS")?;
            let query = self.set_query()?;
            return Ok(Statement::CreateView { name, query });
        }
        if self.at_kw("SEARCH") {
            self.pos += 1;
            let terms = match self.next() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(EiiError::Parse(format!(
                        "SEARCH expects a quoted term string, found {other:?}"
                    )))
                }
            };
            let mut sources = Vec::new();
            if self.skip_kw("IN") {
                loop {
                    sources.push(self.ident()?);
                    if !self.skip_symbol(Symbol::Comma) {
                        break;
                    }
                }
            }
            let limit = if self.skip_kw("LIMIT") {
                Some(self.usize_literal()?)
            } else {
                None
            };
            return Ok(Statement::Search {
                terms,
                sources,
                limit,
            });
        }
        Ok(Statement::Query(self.set_query()?))
    }

    fn usize_literal(&mut self) -> Result<usize> {
        match self.next() {
            Some(Token::Int(n)) if n >= 0 => Ok(n as usize),
            other => Err(EiiError::Parse(format!(
                "expected non-negative integer, found {other:?}"
            ))),
        }
    }

    // ---- queries ------------------------------------------------------

    fn set_query(&mut self) -> Result<SetQuery> {
        let mut left = SetQuery::Select(Box::new(self.select()?));
        while self.at_kw("UNION") {
            self.pos += 1;
            self.expect_kw("ALL")?;
            let right = if self.skip_symbol(Symbol::LParen) {
                let q = self.set_query()?;
                self.expect_symbol(Symbol::RParen)?;
                q
            } else {
                SetQuery::Select(Box::new(self.select()?))
            };
            left = SetQuery::UnionAll(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn select(&mut self) -> Result<Query> {
        self.expect_kw("SELECT")?;
        let distinct = self.skip_kw("DISTINCT");
        let mut items = vec![self.select_item()?];
        while self.skip_symbol(Symbol::Comma) {
            items.push(self.select_item()?);
        }
        let mut from = Vec::new();
        if self.skip_kw("FROM") {
            from.push(self.table_ref()?);
            while self.skip_symbol(Symbol::Comma) {
                from.push(self.table_ref()?);
            }
        }
        let (filter, subquery_preds) = if self.skip_kw("WHERE") {
            self.where_clause()?
        } else {
            (None, Vec::new())
        };
        let mut group_by = Vec::new();
        if self.skip_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.skip_symbol(Symbol::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.skip_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.skip_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.skip_kw("DESC") {
                    false
                } else {
                    self.skip_kw("ASC");
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.skip_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let limit = if self.skip_kw("LIMIT") {
            Some(self.usize_literal()?)
        } else {
            None
        };
        Ok(Query {
            distinct,
            items,
            from,
            filter,
            group_by,
            subquery_preds,
            having,
            order_by,
            limit,
        })
    }

    /// Parse a WHERE clause as a list of AND-separated conjuncts. Each
    /// conjunct is either a `[NOT] EXISTS (SELECT ...)` / `expr [NOT] IN
    /// (SELECT ...)` subquery predicate or an ordinary boolean term. If a
    /// top-level OR shows up, the whole clause is re-parsed as one plain
    /// expression (standard precedence) — in which case subquery predicates
    /// are rejected, because desugaring them under OR would be unsound.
    fn where_clause(&mut self) -> Result<(Option<Expr>, Vec<SubqueryPred>)> {
        let saved_subs = std::mem::take(&mut self.pending_subs);
        let saved_allow = self.allow_subquery;
        let start = self.pos;
        let mut exprs: Vec<Expr> = Vec::new();
        loop {
            // [NOT] EXISTS ( ...
            let exists_here = self.at_kw("EXISTS")
                && self.peek2() == Some(&Token::Symbol(Symbol::LParen));
            let not_exists_here = self.at_kw("NOT")
                && self.peek2().is_some_and(|t| t.is_kw("EXISTS"))
                && self.tokens.get(self.pos + 2) == Some(&Token::Symbol(Symbol::LParen));
            if exists_here || not_exists_here {
                let negated = not_exists_here;
                self.pos += if negated { 2 } else { 1 };
                self.expect_symbol(Symbol::LParen)?;
                let query = self.nested_set_query()?;
                self.expect_symbol(Symbol::RParen)?;
                self.pending_subs.push(SubqueryPred::Exists { query, negated });
            } else {
                self.allow_subquery = true;
                self.term_not_used = false;
                let before = self.pending_subs.len();
                let e = self.not_expr()?;
                self.allow_subquery = false;
                if self.pending_subs.len() > before && self.term_not_used {
                    return Err(EiiError::Parse(
                        "IN (SELECT ...) cannot appear under NOT; write NOT IN"
                            .into(),
                    ));
                }
                // A conjunct that was entirely a subquery predicate leaves
                // only its neutral TRUE placeholder behind; drop it.
                if !(self.pending_subs.len() > before && e == Expr::lit(true)) {
                    exprs.push(e);
                }
            }
            if self.skip_kw("AND") {
                continue;
            }
            if self.at_kw("OR") {
                // Top-level disjunction: conjunct splitting does not apply.
                if !self.pending_subs.is_empty() {
                    return Err(EiiError::Parse(
                        "IN (SELECT ...) / EXISTS are only supported as \
                         top-level AND conjuncts of WHERE (not under OR)"
                            .into(),
                    ));
                }
                self.pos = start;
                self.pending_subs = saved_subs;
                self.allow_subquery = false;
                let e = self.or_expr()?;
                self.allow_subquery = saved_allow;
                return Ok((Some(e), Vec::new()));
            }
            break;
        }
        let subs = std::mem::replace(&mut self.pending_subs, saved_subs);
        self.allow_subquery = saved_allow;
        Ok((exprs.into_iter().reduce(Expr::and), subs))
    }

    /// Parse a nested subquery with the subquery side channel disabled (the
    /// inner query's own WHERE re-enables it for itself).
    fn nested_set_query(&mut self) -> Result<SetQuery> {
        let saved_allow = std::mem::replace(&mut self.allow_subquery, false);
        let saved_not = self.term_not_used;
        let q = self.set_query()?;
        self.allow_subquery = saved_allow;
        self.term_not_used = saved_not;
        Ok(q)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        // `*`
        if self.at_symbol(Symbol::Star) {
            self.pos += 1;
            return Ok(SelectItem::Wildcard { relation: None });
        }
        // `alias.*`
        if let (Some(Token::Ident(rel)), Some(Token::Symbol(Symbol::Dot))) =
            (self.peek(), self.peek2())
        {
            if self.tokens.get(self.pos + 2) == Some(&Token::Symbol(Symbol::Star)) {
                let relation = rel.clone();
                self.pos += 3;
                return Ok(SelectItem::Wildcard {
                    relation: Some(relation),
                });
            }
        }
        let expr = self.select_expr()?;
        let alias = if self.skip_kw("AS") {
            Some(self.ident()?)
        } else {
            // Bare alias: identifier not followed by '.' or '(' and not a
            // clause keyword.
            match self.peek() {
                Some(Token::Ident(s)) if !is_clause_keyword(s) => {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn select_expr(&mut self) -> Result<SelectExpr> {
        // Aggregate call?
        if let (Some(Token::Ident(name)), Some(Token::Symbol(Symbol::LParen))) =
            (self.peek(), self.peek2())
        {
            if let Some(func) = AggFunc::from_name(name) {
                self.pos += 2;
                if func == AggFunc::Count && self.at_symbol(Symbol::Star) {
                    self.pos += 1;
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(SelectExpr::Agg {
                        func: AggFunc::CountStar,
                        arg: None,
                        distinct: false,
                    });
                }
                let distinct = self.skip_kw("DISTINCT");
                let arg = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                return Ok(SelectExpr::Agg {
                    func,
                    arg: Some(arg),
                    distinct,
                });
            }
        }
        Ok(SelectExpr::Scalar(self.expr()?))
    }

    // ---- FROM clause ----------------------------------------------------

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.primary_table_ref()?;
        loop {
            let kind = if self.at_kw("JOIN") || self.at_kw("INNER") {
                self.skip_kw("INNER");
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.at_kw("LEFT") {
                self.pos += 1;
                self.skip_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.at_kw("CROSS") {
                self.pos += 1;
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.primary_table_ref()?;
            let on = if kind != JoinKind::Cross {
                self.expect_kw("ON")?;
                Some(self.expr()?)
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn primary_table_ref(&mut self) -> Result<TableRef> {
        if self.skip_symbol(Symbol::LParen) {
            let query = self.nested_set_query()?;
            self.expect_symbol(Symbol::RParen)?;
            self.skip_kw("AS");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.qualified_name()?;
        let alias = if self.skip_kw("AS") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                Some(Token::Ident(s)) if !is_clause_keyword(s) && !is_join_keyword(s) => {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(TableRef::Table { name, alias })
    }

    fn qualified_name(&mut self) -> Result<String> {
        let mut name = self.ident()?;
        while self.at_symbol(Symbol::Dot) {
            // Only consume the dot if an identifier follows (not `.*`).
            if matches!(self.peek2(), Some(Token::Ident(_))) {
                self.pos += 1;
                name.push('.');
                name.push_str(&self.ident()?);
            } else {
                break;
            }
        }
        Ok(name)
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.skip_kw("OR") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.skip_kw("AND") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.skip_kw("NOT") {
            self.term_not_used = true;
            return Ok(self.not_expr()?.not());
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.at_kw("IS") {
            self.pos += 1;
            let negated = self.skip_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] LIKE / IN / BETWEEN
        let negated = if self.at_kw("NOT")
            && self
                .peek2()
                .is_some_and(|t| t.is_kw("LIKE") || t.is_kw("IN") || t.is_kw("BETWEEN"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.skip_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.skip_kw("IN") {
            self.expect_symbol(Symbol::LParen)?;
            if self.at_kw("SELECT") {
                if !self.allow_subquery {
                    return Err(EiiError::Parse(
                        "IN (SELECT ...) is only supported as a top-level AND \
                         conjunct of WHERE"
                            .into(),
                    ));
                }
                let query = self.nested_set_query()?;
                self.expect_symbol(Symbol::RParen)?;
                self.pending_subs.push(SubqueryPred::In {
                    expr: left,
                    query,
                    negated,
                });
                // The predicate leaves the expression tree; its placeholder
                // is neutral under AND.
                return Ok(Expr::lit(true));
            }
            let mut list = vec![self.expr()?];
            while self.skip_symbol(Symbol::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.skip_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("LIKE, IN, or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Symbol(Symbol::Eq)) => BinaryOp::Eq,
            Some(Token::Symbol(Symbol::NotEq)) => BinaryOp::NotEq,
            Some(Token::Symbol(Symbol::Lt)) => BinaryOp::Lt,
            Some(Token::Symbol(Symbol::LtEq)) => BinaryOp::LtEq,
            Some(Token::Symbol(Symbol::Gt)) => BinaryOp::Gt,
            Some(Token::Symbol(Symbol::GtEq)) => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.additive()?;
        Ok(left.binary(op, right))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Plus)) => BinaryOp::Plus,
                Some(Token::Symbol(Symbol::Minus)) => BinaryOp::Minus,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Star)) => BinaryOp::Multiply,
                Some(Token::Symbol(Symbol::Slash)) => BinaryOp::Divide,
                Some(Token::Symbol(Symbol::Percent)) => BinaryOp::Modulo,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.skip_symbol(Symbol::Minus) {
            let inner = self.unary()?;
            // Fold negative literals directly.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: eii_expr::UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Expr::lit(n))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::lit(f))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::lit(s.as_str()))
            }
            Some(Token::Symbol(Symbol::LParen)) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(Expr::lit(true));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(Expr::lit(false));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("CASE") {
                    return self.case_expr();
                }
                if name.eq_ignore_ascii_case("CAST") {
                    return self.cast_expr();
                }
                // Function call?
                if self.peek2() == Some(&Token::Symbol(Symbol::LParen)) {
                    if let Some(func) = ScalarFunc::from_name(&name) {
                        self.pos += 2;
                        let mut args = Vec::new();
                        if !self.at_symbol(Symbol::RParen) {
                            args.push(self.expr()?);
                            while self.skip_symbol(Symbol::Comma) {
                                args.push(self.expr()?);
                            }
                        }
                        self.expect_symbol(Symbol::RParen)?;
                        return Ok(Expr::Func { func, args });
                    }
                    if AggFunc::from_name(&name).is_some() {
                        return Err(EiiError::Parse(format!(
                            "aggregate {name} is only allowed in the select list"
                        )));
                    }
                    return Err(EiiError::Parse(format!("unknown function {name}")));
                }
                // Column reference, possibly qualified.
                self.pos += 1;
                if self.at_symbol(Symbol::Dot) {
                    if let Some(Token::Ident(col)) = self.peek2().cloned() {
                        self.pos += 2;
                        return Ok(Expr::qcol(name, col));
                    }
                }
                Ok(Expr::col(name))
            }
            other => Err(EiiError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_kw("CASE")?;
        let mut branches = Vec::new();
        while self.skip_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let result = self.expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(EiiError::Parse("CASE needs at least one WHEN".into()));
        }
        let else_expr = if self.skip_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            branches,
            else_expr,
        })
    }

    fn cast_expr(&mut self) -> Result<Expr> {
        self.expect_kw("CAST")?;
        self.expect_symbol(Symbol::LParen)?;
        let e = self.expr()?;
        self.expect_kw("AS")?;
        let ty_name = self.ident()?;
        let to = match ty_name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => DataType::Int,
            "FLOAT" | "DOUBLE" | "REAL" => DataType::Float,
            "STR" | "STRING" | "VARCHAR" | "TEXT" => DataType::Str,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            "TIMESTAMP" => DataType::Timestamp,
            other => return Err(EiiError::Parse(format!("unknown type {other}"))),
        };
        self.expect_symbol(Symbol::RParen)?;
        Ok(Expr::Cast {
            expr: Box::new(e),
            to,
        })
    }
}

fn is_clause_keyword(s: &str) -> bool {
    const KW: &[&str] = &[
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "UNION", "ON", "AS", "AND", "OR",
        "NOT", "JOIN", "INNER", "LEFT", "CROSS", "ASC", "DESC", "BY",
    ];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

fn is_join_keyword(s: &str) -> bool {
    const KW: &[&str] = &["JOIN", "INNER", "LEFT", "CROSS", "ON"];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_select() {
        let q = parse_query("SELECT a, b FROM t WHERE a > 1 ORDER BY a DESC LIMIT 10").unwrap();
        let selects = q.selects();
        let s = selects[0];
        assert_eq!(s.items.len(), 2);
        assert!(s.filter.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].asc);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parses_qualified_tables_and_aliases() {
        let q = parse_query("SELECT c.name FROM crm.customers AS c").unwrap();
        let s = q.selects()[0].clone();
        match &s.from[0] {
            TableRef::Table { name, alias } => {
                assert_eq!(name, "crm.customers");
                assert_eq!(alias.as_deref(), Some("c"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_alias_without_as() {
        let q = parse_query("SELECT c.name FROM customers c").unwrap();
        let s = q.selects()[0].clone();
        assert_eq!(s.from[0].visible_name(), Some("c"));
    }

    #[test]
    fn parses_joins() {
        let q = parse_query(
            "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.x = c.x",
        )
        .unwrap();
        let s = q.selects()[0].clone();
        match &s.from[0] {
            TableRef::Join { kind, left, .. } => {
                assert_eq!(*kind, JoinKind::Left);
                assert!(matches!(**left, TableRef::Join { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let q = parse_query(
            "SELECT dept, COUNT(*) AS n, AVG(salary) FROM emp GROUP BY dept HAVING n > 2",
        )
        .unwrap();
        let s = q.selects()[0].clone();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        match &s.items[1] {
            SelectItem::Expr {
                expr: SelectExpr::Agg { func, .. },
                alias,
            } => {
                assert_eq!(*func, AggFunc::CountStar);
                assert_eq!(alias.as_deref(), Some("n"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_count_distinct() {
        let q = parse_query("SELECT COUNT(DISTINCT region) FROM t").unwrap();
        let s = q.selects()[0].clone();
        match &s.items[0] {
            SelectItem::Expr {
                expr: SelectExpr::Agg { func, distinct, .. },
                ..
            } => {
                assert_eq!(*func, AggFunc::Count);
                assert!(*distinct);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_union_all() {
        let q = parse_query("SELECT a FROM t1 UNION ALL SELECT a FROM t2 UNION ALL SELECT a FROM t3")
            .unwrap();
        assert_eq!(q.selects().len(), 3);
    }

    #[test]
    fn parses_subquery_in_from() {
        let q = parse_query("SELECT x.n FROM (SELECT a AS n FROM t) AS x WHERE x.n > 0").unwrap();
        let s = q.selects()[0].clone();
        assert!(matches!(&s.from[0], TableRef::Subquery { alias, .. } if alias == "x"));
    }

    #[test]
    fn parses_create_view() {
        let stmt =
            parse_statement("CREATE VIEW global.customers AS SELECT id, name FROM crm.customers")
                .unwrap();
        match stmt {
            Statement::CreateView { name, .. } => assert_eq!(name, "global.customers"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_search() {
        let stmt = parse_statement("SEARCH 'acme contract renewal' IN crm, docs LIMIT 5").unwrap();
        match stmt {
            Statement::Search {
                terms,
                sources,
                limit,
            } => {
                assert_eq!(terms, "acme contract renewal");
                assert_eq!(sources, vec!["crm".to_string(), "docs".to_string()]);
                assert_eq!(limit, Some(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expression("a + b * 2 < 10 AND NOT c = 3 OR d IS NULL").unwrap();
        assert_eq!(
            e.to_string(),
            "((((a + (b * 2)) < 10) AND (NOT (c = 3))) OR (d IS NULL))"
        );
    }

    #[test]
    fn not_like_and_in_and_between() {
        let e = parse_expression("name NOT LIKE 'a%' AND x IN (1, 2) AND y NOT BETWEEN 1 AND 5")
            .unwrap();
        let s = e.to_string();
        assert!(s.contains("NOT LIKE"));
        assert!(s.contains("IN (1, 2)"));
        assert!(s.contains("NOT BETWEEN"));
    }

    #[test]
    fn case_and_cast() {
        let e = parse_expression(
            "CASE WHEN x > 0 THEN 'p' ELSE 'n' END",
        )
        .unwrap();
        assert!(matches!(e, Expr::Case { .. }));
        let e = parse_expression("CAST(x AS INT)").unwrap();
        assert!(matches!(e, Expr::Cast { to: DataType::Int, .. }));
    }

    #[test]
    fn scalar_functions_parse() {
        let e = parse_expression("LOWER(CONCAT(a, '-', b))").unwrap();
        assert_eq!(e.to_string(), "LOWER(CONCAT(a, '-', b))");
    }

    #[test]
    fn negative_literals_fold() {
        let e = parse_expression("-5").unwrap();
        assert_eq!(e, Expr::lit(-5i64));
        let e = parse_expression("-x").unwrap();
        assert!(matches!(e, Expr::Unary { .. }));
    }

    #[test]
    fn wildcard_variants() {
        let q = parse_query("SELECT *, c.* FROM t AS c").unwrap();
        let s = q.selects()[0].clone();
        assert!(matches!(&s.items[0], SelectItem::Wildcard { relation: None }));
        assert!(
            matches!(&s.items[1], SelectItem::Wildcard { relation: Some(r) } if r == "c")
        );
    }

    #[test]
    fn parses_in_subquery_as_conjunct() {
        let q = parse_query(
            "SELECT name FROM crm.customers WHERE region = 'west' AND \
             id IN (SELECT customer_id FROM sales.orders WHERE total > 100)",
        )
        .unwrap();
        let s = q.selects()[0].clone();
        assert!(s.filter.is_some());
        assert_eq!(s.subquery_preds.len(), 1);
        match &s.subquery_preds[0] {
            SubqueryPred::In { expr, negated, .. } => {
                assert_eq!(expr.to_string(), "id");
                assert!(!negated);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_not_in_and_exists() {
        let q = parse_query(
            "SELECT name FROM t WHERE id NOT IN (SELECT bad_id FROM blocklist.ids) \
             AND NOT EXISTS (SELECT 1 FROM ops.freeze) AND EXISTS (SELECT 1 FROM ops.go)",
        )
        .unwrap();
        let s = q.selects()[0].clone();
        assert_eq!(s.subquery_preds.len(), 3);
        assert!(matches!(&s.subquery_preds[0], SubqueryPred::In { negated: true, .. }));
        assert!(matches!(&s.subquery_preds[1], SubqueryPred::Exists { negated: true, .. }));
        assert!(matches!(&s.subquery_preds[2], SubqueryPred::Exists { negated: false, .. }));
        assert!(s.filter.is_none(), "all conjuncts were subquery predicates");
    }

    #[test]
    fn subquery_under_or_is_rejected() {
        let err = parse_query(
            "SELECT name FROM t WHERE region = 'x' OR id IN (SELECT i FROM s.t)",
        )
        .unwrap_err();
        assert_eq!(err.kind(), "parse");
        let err = parse_query(
            "SELECT name FROM t WHERE NOT id IN (SELECT i FROM s.t)",
        )
        .unwrap_err();
        assert_eq!(err.kind(), "parse");
    }

    #[test]
    fn subquery_outside_where_is_rejected() {
        let err = parse_query("SELECT id IN (SELECT i FROM s.t) FROM t").unwrap_err();
        assert_eq!(err.kind(), "parse");
    }

    #[test]
    fn nested_subquery_in_subquery_where() {
        let q = parse_query(
            "SELECT name FROM a.t WHERE id IN \
             (SELECT x FROM b.t WHERE y IN (SELECT z FROM c.t))",
        )
        .unwrap();
        let outer = q.selects()[0].clone();
        assert_eq!(outer.subquery_preds.len(), 1);
        match &outer.subquery_preds[0] {
            SubqueryPred::In { query, .. } => {
                let inner = query.selects()[0].clone();
                assert_eq!(inner.subquery_preds.len(), 1, "inner IN stays inner");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exists_as_column_name_still_errors_cleanly() {
        // `exists` followed by '(' is always the quantifier in this dialect.
        let q = parse_query("SELECT a FROM t WHERE exists_flag = 1").unwrap();
        assert!(q.selects()[0].filter.is_some());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT 1 FROM t garbage garbage").is_err());
        assert!(parse_statement("SELECT 1;").is_ok());
    }

    #[test]
    fn aggregates_rejected_in_where() {
        let err = parse_query("SELECT a FROM t WHERE SUM(a) > 1").unwrap_err();
        assert_eq!(err.kind(), "parse");
    }

    #[test]
    fn select_without_from() {
        let q = parse_query("SELECT 1 + 2 AS three").unwrap();
        let s = q.selects()[0].clone();
        assert!(s.from.is_empty());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_query("select a from t where a like 'x%' order by a asc").is_ok());
    }
}
