//! Per-table change logs.
//!
//! Every mutation of a [`crate::Table`] is appended here with a monotonically
//! increasing sequence number. The warehouse's incremental ETL (extract only
//! what changed since the last refresh) and the materialized-view refresher
//! both read from this log; the EAI engine's change-notification channel is
//! built on it too.

use eii_data::Row;

/// What happened to a row.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeOp {
    Insert { new: Row },
    Update { old: Row, new: Row },
    Delete { old: Row },
}

/// A logged change.
#[derive(Debug, Clone, PartialEq)]
pub struct Change {
    /// Monotonic sequence number, 1-based, unique per table.
    pub seq: u64,
    /// Simulated time at which the change committed.
    pub at_ms: i64,
    pub op: ChangeOp,
}

/// An append-only change log.
#[derive(Debug, Default)]
pub struct ChangeLog {
    entries: Vec<Change>,
    next_seq: u64,
}

impl ChangeLog {
    /// Empty log.
    pub fn new() -> Self {
        ChangeLog {
            entries: Vec::new(),
            next_seq: 1,
        }
    }

    /// Append a change, returning its sequence number.
    pub fn append(&mut self, at_ms: i64, op: ChangeOp) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Change { seq, at_ms, op });
        seq
    }

    /// All changes with `seq > after_seq`, in order.
    pub fn since(&self, after_seq: u64) -> &[Change] {
        // Sequence numbers are dense and 1-based, so the slice offset is
        // directly computable.
        let start = (after_seq as usize).min(self.entries.len());
        &self.entries[start..]
    }

    /// Highest sequence number assigned so far (0 when empty).
    pub fn high_watermark(&self) -> u64 {
        self.next_seq - 1
    }

    /// Number of logged changes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::row;

    #[test]
    fn sequences_are_dense_and_monotonic() {
        let mut log = ChangeLog::new();
        let s1 = log.append(0, ChangeOp::Insert { new: row![1i64] });
        let s2 = log.append(5, ChangeOp::Delete { old: row![1i64] });
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(log.high_watermark(), 2);
    }

    #[test]
    fn since_returns_suffix() {
        let mut log = ChangeLog::new();
        for i in 0..5i64 {
            log.append(i, ChangeOp::Insert { new: row![i] });
        }
        assert_eq!(log.since(0).len(), 5);
        assert_eq!(log.since(3).len(), 2);
        assert_eq!(log.since(3)[0].seq, 4);
        assert!(log.since(5).is_empty());
        assert!(log.since(99).is_empty());
    }
}
