//! A named collection of tables sharing one simulated clock — one
//! "enterprise system" (the CRM database, the HR system, the warehouse...).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use eii_data::{EiiError, Result, SimClock};

use crate::table::{Table, TableDef};

/// Shared handle to a table.
pub type TableHandle = Arc<RwLock<Table>>;

/// A database: a set of tables addressed by name.
#[derive(Debug, Clone)]
pub struct Database {
    name: String,
    clock: SimClock,
    tables: Arc<RwLock<BTreeMap<String, TableHandle>>>,
}

impl Database {
    /// Create an empty database on the given clock.
    pub fn new(name: impl Into<String>, clock: SimClock) -> Self {
        Database {
            name: name.into(),
            clock,
            tables: Arc::new(RwLock::new(BTreeMap::new())),
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Create a table from its definition.
    pub fn create_table(&self, def: TableDef) -> Result<TableHandle> {
        let mut tables = self.tables.write();
        if tables.contains_key(&def.name) {
            return Err(EiiError::AlreadyExists(format!(
                "table {} in database {}",
                def.name, self.name
            )));
        }
        let name = def.name.clone();
        let handle = Arc::new(RwLock::new(Table::new(def, self.clock.clone())));
        tables.insert(name, Arc::clone(&handle));
        Ok(handle)
    }

    /// Fetch a table handle by name.
    pub fn table(&self, name: &str) -> Result<TableHandle> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| {
                EiiError::NotFound(format!("table {name} in database {}", self.name))
            })
    }

    /// Drop a table. Returns true when it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.tables.write().remove(name).is_some()
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema};

    fn def(name: &str) -> TableDef {
        TableDef::new(
            name,
            Arc::new(Schema::new(vec![Field::new("id", DataType::Int)])),
        )
    }

    #[test]
    fn create_get_drop() {
        let db = Database::new("crm", SimClock::new());
        db.create_table(def("customers")).unwrap();
        assert!(db.table("customers").is_ok());
        assert_eq!(
            db.create_table(def("customers")).unwrap_err().kind(),
            "already_exists"
        );
        assert!(db.drop_table("customers"));
        assert!(!db.drop_table("customers"));
        assert_eq!(db.table("customers").unwrap_err().kind(), "not_found");
    }

    #[test]
    fn handles_share_state() {
        let db = Database::new("crm", SimClock::new());
        let t1 = db.create_table(def("t")).unwrap();
        let t2 = db.table("t").unwrap();
        t1.write().insert(row![1i64]).unwrap();
        assert_eq!(t2.read().row_count(), 1);
    }

    #[test]
    fn table_names_sorted() {
        let db = Database::new("d", SimClock::new());
        db.create_table(def("zeta")).unwrap();
        db.create_table(def("alpha")).unwrap();
        assert_eq!(db.table_names(), vec!["alpha", "zeta"]);
    }
}
