//! Secondary indexes over table rows.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use eii_data::Value;

use crate::table::RowId;

/// A hash index from a single column's value to the row ids holding it.
/// Equality lookups only.
#[derive(Debug, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<RowId>>,
    pub(crate) column: usize,
}

impl HashIndex {
    /// New empty index over column position `column`.
    pub fn new(column: usize) -> Self {
        HashIndex {
            map: HashMap::new(),
            column,
        }
    }

    /// Column position the index covers.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Register `rid` under `key`.
    pub fn insert(&mut self, key: Value, rid: RowId) {
        self.map.entry(key).or_default().push(rid);
    }

    /// Remove `rid` from under `key`.
    pub fn remove(&mut self, key: &Value, rid: RowId) {
        if let Some(v) = self.map.get_mut(key) {
            v.retain(|r| *r != rid);
            if v.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Row ids with exactly this key.
    pub fn get(&self, key: &Value) -> &[RowId] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// An ordered index supporting range scans.
#[derive(Debug, Default)]
pub struct OrderedIndex {
    map: BTreeMap<Value, Vec<RowId>>,
    pub(crate) column: usize,
}

impl OrderedIndex {
    /// New empty index over column position `column`.
    pub fn new(column: usize) -> Self {
        OrderedIndex {
            map: BTreeMap::new(),
            column,
        }
    }

    /// Column position the index covers.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Register `rid` under `key`.
    pub fn insert(&mut self, key: Value, rid: RowId) {
        self.map.entry(key).or_default().push(rid);
    }

    /// Remove `rid` from under `key`.
    pub fn remove(&mut self, key: &Value, rid: RowId) {
        if let Some(v) = self.map.get_mut(key) {
            v.retain(|r| *r != rid);
            if v.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Row ids with keys in the given (inclusive/exclusive per `Bound`)
    /// range, in key order.
    pub fn range(&self, low: Bound<&Value>, high: Bound<&Value>) -> Vec<RowId> {
        self.map
            .range((low, high))
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }

    /// Row ids with exactly this key.
    pub fn get(&self, key: &Value) -> &[RowId] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_insert_get_remove() {
        let mut ix = HashIndex::new(0);
        ix.insert(Value::Int(1), 10);
        ix.insert(Value::Int(1), 11);
        ix.insert(Value::Int(2), 12);
        assert_eq!(ix.get(&Value::Int(1)), &[10, 11]);
        ix.remove(&Value::Int(1), 10);
        assert_eq!(ix.get(&Value::Int(1)), &[11]);
        ix.remove(&Value::Int(1), 11);
        assert!(ix.get(&Value::Int(1)).is_empty());
        assert_eq!(ix.distinct_keys(), 1);
    }

    #[test]
    fn ordered_index_range_scan() {
        let mut ix = OrderedIndex::new(0);
        for i in 0..10i64 {
            ix.insert(Value::Int(i), i as RowId);
        }
        let rids = ix.range(
            Bound::Included(&Value::Int(3)),
            Bound::Excluded(&Value::Int(7)),
        );
        assert_eq!(rids, vec![3, 4, 5, 6]);
        let all = ix.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn ordered_index_heterogeneous_keys_do_not_panic() {
        let mut ix = OrderedIndex::new(0);
        ix.insert(Value::Int(1), 0);
        ix.insert(Value::str("a"), 1);
        let all = ix.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 2);
    }
}
