//! # eii-storage
//!
//! A small but real in-memory relational storage engine. In the reproduction
//! it plays the role of every relational enterprise source (the "very
//! carefully tuned data sources" of Halevy's introduction), the staging area
//! and warehouse tables of the ETL substrate, and the backing store for
//! materialized views.
//!
//! Features: typed tables with primary-key and not-null constraints, hash and
//! ordered secondary indexes, predicate scans (the engine a wrapper pushes
//! component queries into), table statistics for the federated cost model,
//! and a change log that drives incremental ETL refresh and change
//! notification (Rosenthal's auto-generated `Notify` methods).

pub mod changelog;
pub mod database;
pub mod index;
pub mod stats;
pub mod table;

pub use changelog::{Change, ChangeLog, ChangeOp};
pub use database::Database;
pub use index::{HashIndex, OrderedIndex};
pub use stats::{ColumnStats, TableStats};
pub use table::{RowId, Table, TableDef};
