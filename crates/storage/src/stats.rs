//! Table statistics for the federated cost model.
//!
//! The planner's cost model (selectivity estimation, join ordering, assembly-
//! site selection) consumes these. `analyze` computes them exactly; sources
//! in the real world would expose estimates, which the wrapper layer can
//! degrade deliberately for the prediction-error experiment (E12).

use std::collections::HashSet;

use eii_data::{Row, Value};

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub ndv: usize,
    /// Number of NULLs.
    pub null_count: usize,
    /// Minimum non-null value, if any.
    pub min: Option<Value>,
    /// Maximum non-null value, if any.
    pub max: Option<Value>,
    /// Average wire size of a value in this column, bytes.
    pub avg_width: f64,
}

/// Whole-table statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    pub row_count: usize,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute exact statistics from rows.
    pub fn analyze<'a>(width: usize, rows: impl Iterator<Item = &'a Row>) -> TableStats {
        let mut row_count = 0usize;
        let mut distinct: Vec<HashSet<Value>> = vec![HashSet::new(); width];
        let mut nulls = vec![0usize; width];
        let mut mins: Vec<Option<Value>> = vec![None; width];
        let mut maxs: Vec<Option<Value>> = vec![None; width];
        let mut widths = vec![0usize; width];
        for row in rows {
            row_count += 1;
            for (c, v) in row.values().iter().enumerate() {
                widths[c] += v.wire_size();
                if v.is_null() {
                    nulls[c] += 1;
                    continue;
                }
                distinct[c].insert(v.clone());
                match &mins[c] {
                    Some(m) if m <= v => {}
                    _ => mins[c] = Some(v.clone()),
                }
                match &maxs[c] {
                    Some(m) if m >= v => {}
                    _ => maxs[c] = Some(v.clone()),
                }
            }
        }
        let columns = (0..width)
            .map(|c| ColumnStats {
                ndv: distinct[c].len(),
                null_count: nulls[c],
                min: mins[c].clone(),
                max: maxs[c].clone(),
                avg_width: if row_count == 0 {
                    0.0
                } else {
                    widths[c] as f64 / row_count as f64
                },
            })
            .collect();
        TableStats { row_count, columns }
    }

    /// Average wire size of a full row.
    pub fn avg_row_width(&self) -> f64 {
        self.columns.iter().map(|c| c.avg_width).sum()
    }

    /// Estimated selectivity of `col = literal` under uniformity: `1/ndv`.
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        match self.columns.get(col) {
            Some(c) if c.ndv > 0 => 1.0 / c.ndv as f64,
            _ => 0.1,
        }
    }

    /// Estimated selectivity of a range predicate on `col` covering the
    /// fraction of the [min, max] interval between `low` and `high`
    /// (numeric columns only; defaults to 1/3 otherwise, the classic
    /// System-R guess).
    pub fn range_selectivity(&self, col: usize, low: Option<&Value>, high: Option<&Value>) -> f64 {
        let Some(c) = self.columns.get(col) else {
            return 1.0 / 3.0;
        };
        let (Some(min), Some(max)) = (
            c.min.as_ref().and_then(Value::as_float),
            c.max.as_ref().and_then(Value::as_float),
        ) else {
            return 1.0 / 3.0;
        };
        if max <= min {
            return 1.0;
        }
        let lo = low.and_then(Value::as_float).unwrap_or(min).max(min);
        let hi = high.and_then(Value::as_float).unwrap_or(max).min(max);
        ((hi - lo) / (max - min)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::row;

    fn rows() -> Vec<Row> {
        vec![
            row![1i64, "a", 10.0],
            row![2i64, "b", 20.0],
            row![2i64, "b", 30.0],
            Row::new(vec![Value::Int(3), Value::Null, Value::Float(40.0)]),
        ]
    }

    #[test]
    fn analyze_counts() {
        let rs = rows();
        let s = TableStats::analyze(3, rs.iter());
        assert_eq!(s.row_count, 4);
        assert_eq!(s.columns[0].ndv, 3);
        assert_eq!(s.columns[1].ndv, 2);
        assert_eq!(s.columns[1].null_count, 1);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(3)));
    }

    #[test]
    fn selectivities() {
        let rs = rows();
        let s = TableStats::analyze(3, rs.iter());
        assert!((s.eq_selectivity(0) - 1.0 / 3.0).abs() < 1e-9);
        // Range covering half of [10, 40].
        let sel = s.range_selectivity(2, Some(&Value::Float(10.0)), Some(&Value::Float(25.0)));
        assert!((sel - 0.5).abs() < 1e-9);
        // Non-numeric column falls back to 1/3.
        assert!((s.range_selectivity(1, None, None) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_table() {
        let s = TableStats::analyze(2, std::iter::empty());
        assert_eq!(s.row_count, 0);
        assert_eq!(s.avg_row_width(), 0.0);
    }
}
