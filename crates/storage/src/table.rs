//! Tables: constraint-checked row storage with secondary indexes, a change
//! log, and cached statistics.

use std::ops::Bound;

use eii_data::{EiiError, Result, Row, SchemaRef, SimClock, Value};

use crate::changelog::{ChangeLog, ChangeOp};
use crate::index::{HashIndex, OrderedIndex};
use crate::stats::TableStats;

/// Identifies a row slot within a table. Stable across unrelated mutations,
/// recycled after deletion.
pub type RowId = usize;

/// Static description of a table.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub name: String,
    pub schema: SchemaRef,
    /// Position of the primary-key column, if the table has one.
    pub primary_key: Option<usize>,
}

impl TableDef {
    /// A table without a primary key.
    pub fn new(name: impl Into<String>, schema: SchemaRef) -> Self {
        TableDef {
            name: name.into(),
            schema,
            primary_key: None,
        }
    }

    /// Declare the primary-key column.
    pub fn with_primary_key(mut self, col: usize) -> Self {
        self.primary_key = Some(col);
        self
    }
}

/// A mutable, indexed, logged table.
#[derive(Debug)]
pub struct Table {
    def: TableDef,
    slots: Vec<Option<Row>>,
    free: Vec<RowId>,
    live: usize,
    pk_index: Option<HashIndex>,
    hash_indexes: Vec<HashIndex>,
    ordered_indexes: Vec<OrderedIndex>,
    log: ChangeLog,
    clock: SimClock,
    stats_cache: Option<TableStats>,
}

impl Table {
    /// Create an empty table.
    pub fn new(def: TableDef, clock: SimClock) -> Self {
        let pk_index = def.primary_key.map(HashIndex::new);
        Table {
            def,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            pk_index,
            hash_indexes: Vec::new(),
            ordered_indexes: Vec::new(),
            log: ChangeLog::new(),
            clock,
            stats_cache: None,
        }
    }

    /// The table definition.
    pub fn def(&self) -> &TableDef {
        &self.def
    }

    /// The table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.def.schema
    }

    /// Number of live rows.
    pub fn row_count(&self) -> usize {
        self.live
    }

    /// The change log.
    pub fn changelog(&self) -> &ChangeLog {
        &self.log
    }

    fn check_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.def.schema.len() {
            return Err(EiiError::Constraint(format!(
                "table {}: row width {} != schema width {}",
                self.def.name,
                row.len(),
                self.def.schema.len()
            )));
        }
        for (i, (v, f)) in row.values().iter().zip(self.def.schema.fields()).enumerate() {
            if v.is_null() {
                if !f.nullable {
                    return Err(EiiError::Constraint(format!(
                        "table {}: NULL in non-nullable column {} ({})",
                        self.def.name, i, f.name
                    )));
                }
                continue;
            }
            if v.data_type() != Some(f.data_type) {
                return Err(EiiError::Constraint(format!(
                    "table {}: column {} ({}) expects {}, got {v}",
                    self.def.name, i, f.name, f.data_type
                )));
            }
        }
        Ok(())
    }

    /// Insert a row, enforcing width, types, not-null, and primary-key
    /// uniqueness.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        self.check_row(&row)?;
        if let (Some(pk_col), Some(ix)) = (self.def.primary_key, &self.pk_index) {
            let key = row.get(pk_col);
            if !ix.get(key).is_empty() {
                return Err(EiiError::Constraint(format!(
                    "table {}: duplicate primary key {key}",
                    self.def.name
                )));
            }
        }
        let rid = match self.free.pop() {
            Some(rid) => {
                self.slots[rid] = Some(row.clone());
                rid
            }
            None => {
                self.slots.push(Some(row.clone()));
                self.slots.len() - 1
            }
        };
        self.index_row(rid, &row);
        self.live += 1;
        self.stats_cache = None;
        self.log
            .append(self.clock.now_ms(), ChangeOp::Insert { new: row });
        Ok(rid)
    }

    /// Insert many rows (stops at the first constraint violation).
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<usize> {
        let mut n = 0;
        for r in rows {
            self.insert(r)?;
            n += 1;
        }
        Ok(n)
    }

    fn index_row(&mut self, rid: RowId, row: &Row) {
        if let Some(ix) = &mut self.pk_index {
            ix.insert(row.get(ix.column).clone(), rid);
        }
        for ix in &mut self.hash_indexes {
            ix.insert(row.get(ix.column).clone(), rid);
        }
        for ix in &mut self.ordered_indexes {
            ix.insert(row.get(ix.column).clone(), rid);
        }
    }

    fn unindex_row(&mut self, rid: RowId, row: &Row) {
        if let Some(ix) = &mut self.pk_index {
            ix.remove(&row.get(ix.column).clone(), rid);
        }
        for ix in &mut self.hash_indexes {
            ix.remove(&row.get(ix.column).clone(), rid);
        }
        for ix in &mut self.ordered_indexes {
            ix.remove(&row.get(ix.column).clone(), rid);
        }
    }

    /// Fetch a live row by id.
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.slots.get(rid).and_then(Option::as_ref)
    }

    /// Look the row up by primary key (requires a primary key).
    pub fn get_by_pk(&self, key: &Value) -> Option<(RowId, &Row)> {
        let ix = self.pk_index.as_ref()?;
        let rid = *ix.get(key).first()?;
        self.get(rid).map(|r| (rid, r))
    }

    /// Update selected columns of the row with the given primary key.
    /// Returns true when a row was updated.
    pub fn update_by_pk(&mut self, key: &Value, assignments: &[(usize, Value)]) -> Result<bool> {
        let Some((rid, old)) = self.get_by_pk(key) else {
            return Ok(false);
        };
        let old = old.clone();
        let mut new = old.clone();
        for (col, v) in assignments {
            new.set(*col, v.clone());
        }
        self.check_row(&new)?;
        if let Some(pk_col) = self.def.primary_key {
            if new.get(pk_col) != old.get(pk_col) {
                // PK change: enforce uniqueness of the new key.
                if self
                    .pk_index
                    .as_ref()
                    .is_some_and(|ix| !ix.get(new.get(pk_col)).is_empty())
                {
                    return Err(EiiError::Constraint(format!(
                        "table {}: duplicate primary key {}",
                        self.def.name,
                        new.get(pk_col)
                    )));
                }
            }
        }
        self.unindex_row(rid, &old);
        self.slots[rid] = Some(new.clone());
        self.index_row(rid, &new);
        self.stats_cache = None;
        self.log
            .append(self.clock.now_ms(), ChangeOp::Update { old, new });
        Ok(true)
    }

    /// Delete the row with the given primary key. Returns true when a row
    /// was deleted.
    pub fn delete_by_pk(&mut self, key: &Value) -> bool {
        let Some((rid, _)) = self.get_by_pk(key) else {
            return false;
        };
        self.delete(rid)
    }

    /// Delete a row by id. Returns true when a live row was deleted.
    pub fn delete(&mut self, rid: RowId) -> bool {
        let Some(row) = self.slots.get_mut(rid).and_then(Option::take) else {
            return false;
        };
        self.unindex_row(rid, &row);
        self.free.push(rid);
        self.live -= 1;
        self.stats_cache = None;
        self.log
            .append(self.clock.now_ms(), ChangeOp::Delete { old: row });
        true
    }

    /// Delete every row matching the predicate; returns the count.
    pub fn delete_where(&mut self, pred: impl Fn(&Row) -> bool) -> usize {
        let victims: Vec<RowId> = self
            .iter()
            .filter(|(_, r)| pred(r))
            .map(|(rid, _)| rid)
            .collect();
        let n = victims.len();
        for rid in victims {
            self.delete(rid);
        }
        n
    }

    /// Remove all rows (logged as individual deletes).
    pub fn truncate(&mut self) {
        self.delete_where(|_| true);
    }

    /// Iterate over live `(RowId, &Row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(rid, s)| s.as_ref().map(|r| (rid, r)))
    }

    /// Full scan with a row predicate, cloning matching rows.
    pub fn scan(&self, pred: impl Fn(&Row) -> bool) -> Vec<Row> {
        self.iter()
            .filter(|(_, r)| pred(r))
            .map(|(_, r)| r.clone())
            .collect()
    }

    /// All rows.
    pub fn all_rows(&self) -> Vec<Row> {
        self.scan(|_| true)
    }

    /// Equality lookup, index-assisted when an index on `col` exists.
    pub fn lookup_eq(&self, col: usize, key: &Value) -> Vec<Row> {
        if let Some(ix) = &self.pk_index {
            if ix.column == col {
                return ix.get(key).iter().filter_map(|&rid| self.get(rid)).cloned().collect();
            }
        }
        if let Some(ix) = self.hash_indexes.iter().find(|ix| ix.column == col) {
            return ix.get(key).iter().filter_map(|&rid| self.get(rid)).cloned().collect();
        }
        if let Some(ix) = self.ordered_indexes.iter().find(|ix| ix.column == col) {
            return ix.get(key).iter().filter_map(|&rid| self.get(rid)).cloned().collect();
        }
        self.scan(|r| r.get(col) == key)
    }

    /// Range lookup on `col`, index-assisted when an ordered index exists.
    pub fn lookup_range(
        &self,
        col: usize,
        low: Bound<&Value>,
        high: Bound<&Value>,
    ) -> Vec<Row> {
        if let Some(ix) = self.ordered_indexes.iter().find(|ix| ix.column == col) {
            return ix
                .range(low, high)
                .into_iter()
                .filter_map(|rid| self.get(rid))
                .cloned()
                .collect();
        }
        self.scan(|r| {
            let v = r.get(col);
            let lo_ok = match low {
                Bound::Unbounded => true,
                Bound::Included(b) => v >= b,
                Bound::Excluded(b) => v > b,
            };
            let hi_ok = match high {
                Bound::Unbounded => true,
                Bound::Included(b) => v <= b,
                Bound::Excluded(b) => v < b,
            };
            lo_ok && hi_ok
        })
    }

    /// Build a hash index over `col` (no-op if one exists).
    pub fn create_hash_index(&mut self, col: usize) {
        if self.hash_indexes.iter().any(|ix| ix.column == col) {
            return;
        }
        let mut ix = HashIndex::new(col);
        for (rid, row) in self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(rid, s)| s.as_ref().map(|r| (rid, r)))
        {
            ix.insert(row.get(col).clone(), rid);
        }
        self.hash_indexes.push(ix);
    }

    /// Build an ordered index over `col` (no-op if one exists).
    pub fn create_ordered_index(&mut self, col: usize) {
        if self.ordered_indexes.iter().any(|ix| ix.column == col) {
            return;
        }
        let mut ix = OrderedIndex::new(col);
        for (rid, row) in self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(rid, s)| s.as_ref().map(|r| (rid, r)))
        {
            ix.insert(row.get(col).clone(), rid);
        }
        self.ordered_indexes.push(ix);
    }

    /// Table statistics (computed on demand, cached until the next
    /// mutation).
    pub fn stats(&mut self) -> &TableStats {
        if self.stats_cache.is_none() {
            let width = self.def.schema.len();
            let stats = TableStats::analyze(width, self.iter().map(|(_, r)| r));
            self.stats_cache = Some(stats);
        }
        self.stats_cache.as_ref().expect("just computed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, DataType, Field, Schema};
    use std::sync::Arc;

    fn table() -> Table {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
            Field::new("balance", DataType::Float),
        ]));
        Table::new(
            TableDef::new("customers", schema).with_primary_key(0),
            SimClock::new(),
        )
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = table();
        t.insert(row![1i64, "alice", 10.0]).unwrap();
        t.insert(row![2i64, "bob", 20.0]).unwrap();
        assert_eq!(t.row_count(), 2);
        let (_, r) = t.get_by_pk(&Value::Int(2)).unwrap();
        assert_eq!(r.get(1), &Value::str("bob"));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = table();
        t.insert(row![1i64, "alice", 10.0]).unwrap();
        let err = t.insert(row![1i64, "bob", 0.0]).unwrap_err();
        assert_eq!(err.kind(), "constraint");
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn type_and_nullability_enforced() {
        let mut t = table();
        assert_eq!(
            t.insert(row!["not an int", "x", 0.0]).unwrap_err().kind(),
            "constraint"
        );
        let null_id = Row::new(vec![Value::Null, Value::str("x"), Value::Float(0.0)]);
        assert_eq!(t.insert(null_id).unwrap_err().kind(), "constraint");
        let null_name = Row::new(vec![Value::Int(5), Value::Null, Value::Float(0.0)]);
        t.insert(null_name).unwrap();
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut t = table();
        assert_eq!(t.insert(row![1i64]).unwrap_err().kind(), "constraint");
    }

    #[test]
    fn update_by_pk_reindexes() {
        let mut t = table();
        t.create_hash_index(1);
        t.insert(row![1i64, "alice", 10.0]).unwrap();
        assert!(t.update_by_pk(&Value::Int(1), &[(1, Value::str("alicia"))]).unwrap());
        assert!(t.lookup_eq(1, &Value::str("alice")).is_empty());
        assert_eq!(t.lookup_eq(1, &Value::str("alicia")).len(), 1);
        assert!(!t.update_by_pk(&Value::Int(99), &[]).unwrap());
    }

    #[test]
    fn pk_update_to_existing_key_rejected() {
        let mut t = table();
        t.insert(row![1i64, "a", 0.0]).unwrap();
        t.insert(row![2i64, "b", 0.0]).unwrap();
        let err = t
            .update_by_pk(&Value::Int(2), &[(0, Value::Int(1))])
            .unwrap_err();
        assert_eq!(err.kind(), "constraint");
    }

    #[test]
    fn delete_recycles_slots() {
        let mut t = table();
        let rid = t.insert(row![1i64, "a", 0.0]).unwrap();
        assert!(t.delete(rid));
        assert!(!t.delete(rid), "double delete is a no-op");
        assert_eq!(t.row_count(), 0);
        let rid2 = t.insert(row![2i64, "b", 0.0]).unwrap();
        assert_eq!(rid, rid2, "slot recycled");
        // Deleted PK is free again.
        t.insert(row![1i64, "c", 0.0]).unwrap();
    }

    #[test]
    fn changelog_records_mutations() {
        let mut t = table();
        t.insert(row![1i64, "a", 0.0]).unwrap();
        t.update_by_pk(&Value::Int(1), &[(2, Value::Float(5.0))])
            .unwrap();
        t.delete_by_pk(&Value::Int(1));
        let ops: Vec<_> = t.changelog().since(0).iter().map(|c| &c.op).collect();
        assert!(matches!(ops[0], ChangeOp::Insert { .. }));
        assert!(matches!(ops[1], ChangeOp::Update { .. }));
        assert!(matches!(ops[2], ChangeOp::Delete { .. }));
    }

    #[test]
    fn range_lookup_with_and_without_index() {
        let mut t = table();
        for i in 0..20i64 {
            t.insert(row![i, format!("c{i}"), i as f64]).unwrap();
        }
        let scan = t.lookup_range(
            2,
            Bound::Included(&Value::Float(5.0)),
            Bound::Excluded(&Value::Float(10.0)),
        );
        t.create_ordered_index(2);
        let indexed = t.lookup_range(
            2,
            Bound::Included(&Value::Float(5.0)),
            Bound::Excluded(&Value::Float(10.0)),
        );
        assert_eq!(scan.len(), 5);
        let mut a = scan.clone();
        let mut b = indexed.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_cache_invalidation() {
        let mut t = table();
        t.insert(row![1i64, "a", 0.0]).unwrap();
        assert_eq!(t.stats().row_count, 1);
        t.insert(row![2i64, "b", 0.0]).unwrap();
        assert_eq!(t.stats().row_count, 2, "cache invalidated by insert");
    }

    #[test]
    fn truncate_empties_table() {
        let mut t = table();
        for i in 0..5i64 {
            t.insert(row![i, "x", 0.0]).unwrap();
        }
        t.truncate();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.changelog().len(), 10);
    }
}
