//! ETL jobs: extract / transform / load definitions.

use std::sync::Arc;

use eii_data::{Batch, DataType, EiiError, Field, Result, Row, Schema, SchemaRef};
use eii_expr::{bind, Expr};

/// One step of a transform pipeline.
#[derive(Debug, Clone)]
pub enum Transform {
    /// Keep rows matching the predicate.
    Filter(Expr),
    /// Append a computed column.
    Derive { name: String, expr: Expr },
    /// Keep only the named columns, in this order.
    Select(Vec<String>),
    /// Rename a column.
    Rename { from: String, to: String },
    /// Cast a column to a type (failed casts become NULL — dirty data is
    /// cleansed, not fatal).
    Cast { column: String, to: DataType },
    /// Trim and lowercase a string column (the classic cleansing step).
    Normalize(String),
}

impl Transform {
    /// Apply this step to a batch.
    pub fn apply(&self, batch: Batch) -> Result<Batch> {
        let schema = batch.schema().clone();
        match self {
            Transform::Filter(pred) => {
                let bound = bind(pred, &schema)?;
                let mut rows = Vec::new();
                for row in batch.into_rows() {
                    if bound.eval_predicate(&row)? {
                        rows.push(row);
                    }
                }
                Ok(Batch::new(schema, rows))
            }
            Transform::Derive { name, expr } => {
                let bound = bind(expr, &schema)?;
                let ty = eii_expr::infer_type(expr, &schema)?.unwrap_or(DataType::Str);
                let mut fields = schema.fields().to_vec();
                fields.push(Field::new(name.clone(), ty));
                let out_schema: SchemaRef = Arc::new(Schema::new(fields));
                let mut rows = Vec::with_capacity(batch.num_rows());
                for mut row in batch.into_rows() {
                    let v = bound.eval(&row)?;
                    row.push(v);
                    rows.push(row);
                }
                Ok(Batch::new(out_schema, rows))
            }
            Transform::Select(cols) => {
                let indices = cols
                    .iter()
                    .map(|c| schema.index_of(None, c))
                    .collect::<Result<Vec<_>>>()?;
                let out_schema: SchemaRef = Arc::new(Schema::new(
                    indices.iter().map(|&i| schema.field(i).clone()).collect(),
                ));
                let rows = batch
                    .into_rows()
                    .into_iter()
                    .map(|r| r.project(&indices))
                    .collect();
                Ok(Batch::new(out_schema, rows))
            }
            Transform::Rename { from, to } => {
                let idx = schema.index_of(None, from)?;
                let mut fields = schema.fields().to_vec();
                fields[idx].name = to.clone();
                let out_schema: SchemaRef = Arc::new(Schema::new(fields));
                Ok(Batch::new(out_schema, batch.into_rows()))
            }
            Transform::Cast { column, to } => {
                let idx = schema.index_of(None, column)?;
                let mut fields = schema.fields().to_vec();
                fields[idx].data_type = *to;
                fields[idx].nullable = true;
                let out_schema: SchemaRef = Arc::new(Schema::new(fields));
                let rows: Vec<Row> = batch
                    .into_rows()
                    .into_iter()
                    .map(|mut r| {
                        let v = r.get(idx).cast(*to).unwrap_or(eii_data::Value::Null);
                        r.set(idx, v);
                        r
                    })
                    .collect();
                Ok(Batch::new(out_schema, rows))
            }
            Transform::Normalize(column) => {
                let idx = schema.index_of(None, column)?;
                let rows: Vec<Row> = batch
                    .into_rows()
                    .into_iter()
                    .map(|mut r| {
                        if let Some(s) = r.get(idx).as_str() {
                            let cleaned = s.trim().to_lowercase();
                            r.set(idx, eii_data::Value::str(cleaned));
                        }
                        r
                    })
                    .collect();
                Ok(Batch::new(schema, rows))
            }
        }
    }
}

/// An ETL job: where to extract from, how to transform, where to load.
#[derive(Debug, Clone)]
pub struct EtlJob {
    /// Job name (unique within a warehouse).
    pub name: String,
    /// Source, as `source.table` in the federation namespace.
    pub source_table: String,
    /// Transform pipeline applied to extracted batches.
    pub transforms: Vec<Transform>,
    /// Target warehouse table.
    pub target_table: String,
    /// Primary-key column *of the target* (post-transform), used to apply
    /// incremental changes. `None` forces full refresh.
    pub target_key: Option<String>,
}

impl EtlJob {
    /// A pass-through job (no transforms).
    pub fn copy(name: impl Into<String>, source_table: impl Into<String>, target: impl Into<String>) -> Self {
        EtlJob {
            name: name.into(),
            source_table: source_table.into(),
            transforms: Vec::new(),
            target_table: target.into(),
            target_key: None,
        }
    }

    /// Add a transform step.
    pub fn with_transform(mut self, t: Transform) -> Self {
        self.transforms.push(t);
        self
    }

    /// Declare the target's key column, enabling incremental refresh.
    pub fn with_key(mut self, key: impl Into<String>) -> Self {
        self.target_key = Some(key.into());
        self
    }

    /// Run the transform pipeline over one batch.
    pub fn transform(&self, mut batch: Batch) -> Result<Batch> {
        for t in &self.transforms {
            batch = t.apply(batch)?;
        }
        Ok(batch)
    }

    /// Run the transform pipeline over a single row (incremental path).
    /// Filtered-out rows come back as `None`.
    pub fn transform_row(&self, schema: SchemaRef, row: Row) -> Result<Option<Row>> {
        let batch = self.transform(Batch::new(schema, vec![row]))?;
        Ok(batch.into_rows().into_iter().next())
    }

    /// The source name part of `source_table`.
    pub fn source(&self) -> Result<&str> {
        self.source_table
            .split_once('.')
            .map(|(s, _)| s)
            .ok_or_else(|| {
                EiiError::Etl(format!(
                    "job {}: source table '{}' must be source.table",
                    self.name, self.source_table
                ))
            })
    }

    /// The table name part of `source_table`.
    pub fn table(&self) -> Result<&str> {
        self.source_table
            .split_once('.')
            .map(|(_, t)| t)
            .ok_or_else(|| {
                EiiError::Etl(format!(
                    "job {}: source table '{}' must be source.table",
                    self.name, self.source_table
                ))
            })
    }
}

/// Bookkeeping for one job.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EtlStats {
    /// Completed refreshes.
    pub refreshes: usize,
    /// Rows loaded over all refreshes.
    pub rows_loaded: usize,
    /// Simulated time spent refreshing, ms.
    pub refresh_ms: f64,
    /// Simulated time of the last completed refresh.
    pub last_refresh_at_ms: i64,
    /// Change-log watermark consumed so far (incremental jobs).
    pub watermark: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use eii_data::{row, Value};

    fn batch() -> Batch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("amount", DataType::Str), // dirty: numbers as text
        ]));
        Batch::new(
            schema,
            vec![
                row![1i64, "  Alice ", "10.5"],
                row![2i64, "BOB", "oops"],
                row![3i64, "carol", "7"],
            ],
        )
    }

    #[test]
    fn normalize_and_cast_cleanse_dirty_data() {
        let job = EtlJob::copy("j", "s.t", "t")
            .with_transform(Transform::Normalize("name".into()))
            .with_transform(Transform::Cast {
                column: "amount".into(),
                to: DataType::Float,
            });
        let out = job.transform(batch()).unwrap();
        assert_eq!(out.rows()[0].get(1), &Value::str("alice"));
        assert_eq!(out.rows()[0].get(2), &Value::Float(10.5));
        assert_eq!(out.rows()[1].get(2), &Value::Null, "bad cast becomes NULL");
    }

    #[test]
    fn filter_derive_select_rename() {
        let job = EtlJob::copy("j", "s.t", "t")
            .with_transform(Transform::Filter(Expr::col("id").lt(Expr::lit(3i64))))
            .with_transform(Transform::Derive {
                name: "id2".into(),
                expr: Expr::col("id").binary(eii_expr::BinaryOp::Multiply, Expr::lit(2i64)),
            })
            .with_transform(Transform::Select(vec!["id2".into(), "name".into()]))
            .with_transform(Transform::Rename {
                from: "id2".into(),
                to: "double_id".into(),
            });
        let out = job.transform(batch()).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.schema().field(0).name, "double_id");
        assert_eq!(out.rows()[1].get(0), &Value::Int(4));
    }

    #[test]
    fn transform_row_respects_filters() {
        let job = EtlJob::copy("j", "s.t", "t")
            .with_transform(Transform::Filter(Expr::col("id").eq(Expr::lit(1i64))));
        let schema = batch().schema().clone();
        assert!(job
            .transform_row(schema.clone(), row![1i64, "a", "x"])
            .unwrap()
            .is_some());
        assert!(job
            .transform_row(schema, row![2i64, "b", "x"])
            .unwrap()
            .is_none());
    }

    #[test]
    fn source_parsing() {
        let job = EtlJob::copy("j", "crm.customers", "t");
        assert_eq!(job.source().unwrap(), "crm");
        assert_eq!(job.table().unwrap(), "customers");
        let bad = EtlJob::copy("j", "nodot", "t");
        assert_eq!(bad.source().unwrap_err().kind(), "etl");
    }
}
