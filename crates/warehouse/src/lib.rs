//! # eii-warehouse
//!
//! The data warehouse + ETL substrate — the technology EII is measured
//! against throughout the paper. Bitton §3: "the data warehouse has
//! successfully evolved from monthly dumps of operational data lightly
//! cleansed and transformed by batch programs, to sophisticated
//! metadata-driven systems that move large volumes of data through staging
//! areas to operational data stores to data warehouses".
//!
//! It provides:
//! - [`EtlJob`]s: extract (full re-extract, or incremental via the
//!   connectors' change-data capture), a [`Transform`] pipeline (filter,
//!   derive, rename, select, cleanse), and load into warehouse tables;
//! - a [`Warehouse`] with scheduled refresh and **staleness accounting**
//!   (the "cost of accessing stale data" in Halevy's tradeoff triangle);
//! - build/refresh **cost accounting** for the EII-vs-warehouse economics
//!   experiment (E1).

pub mod etl;
pub mod warehouse;

pub use etl::{EtlJob, EtlStats, Transform};
pub use warehouse::{RefreshMode, Warehouse};
