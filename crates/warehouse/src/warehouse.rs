//! The warehouse: target tables, scheduled refresh, staleness accounting.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use eii_data::{Batch, EiiError, Result, SimClock, Value};
use eii_federation::{Federation, SourceQuery};
use eii_storage::{ChangeOp, Database, TableDef};

use crate::etl::{EtlJob, EtlStats};

/// Simulated cost of writing one row into a warehouse table (index + page
/// writes), ms.
const LOAD_MS_PER_ROW: f64 = 0.002;

/// How a refresh acquires source data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// Re-extract the whole source table (the "monthly dump").
    Full,
    /// Consume the source's change log since the last watermark (CDC).
    Incremental,
}

/// A warehouse: its own database loaded by ETL jobs from a federation.
pub struct Warehouse {
    db: Database,
    federation: Federation,
    clock: SimClock,
    jobs: BTreeMap<String, EtlJob>,
    stats: Mutex<BTreeMap<String, EtlStats>>,
}

impl Warehouse {
    /// An empty warehouse named `name`, extracting from `federation`.
    pub fn new(name: impl Into<String>, federation: Federation, clock: SimClock) -> Self {
        Warehouse {
            db: Database::new(name, clock.clone()),
            federation,
            clock,
            jobs: BTreeMap::new(),
            stats: Mutex::new(BTreeMap::new()),
        }
    }

    /// The warehouse's own database (wrap it in a `RelationalConnector` to
    /// query it through the engine).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Register a job, creating its (empty) target table with the
    /// post-transform schema.
    pub fn add_job(&mut self, job: EtlJob) -> Result<()> {
        if self.jobs.contains_key(&job.name) {
            return Err(EiiError::AlreadyExists(format!("etl job {}", job.name)));
        }
        // Derive the target schema by transforming an empty extract.
        let src_schema = self.federation.table_schema(&job.source_table)?;
        let empty = Batch::empty(src_schema);
        let out_schema = job.transform(empty)?.schema().clone();
        let mut def = TableDef::new(job.target_table.clone(), out_schema.clone());
        if let Some(key) = &job.target_key {
            def = def.with_primary_key(out_schema.index_of(None, key)?);
        }
        self.db.create_table(def)?;
        self.stats.lock().insert(job.name.clone(), EtlStats::default());
        self.jobs.insert(job.name.clone(), job);
        Ok(())
    }

    /// Names of registered jobs.
    pub fn job_names(&self) -> Vec<String> {
        self.jobs.keys().cloned().collect()
    }

    /// Bookkeeping for one job.
    pub fn stats(&self, job: &str) -> Option<EtlStats> {
        self.stats.lock().get(job).copied()
    }

    /// Total simulated time spent refreshing across all jobs — the "cost of
    /// building [and maintaining] a warehouse".
    pub fn total_refresh_ms(&self) -> f64 {
        self.stats.lock().values().map(|s| s.refresh_ms).sum()
    }

    /// Simulated staleness of a job's data right now.
    pub fn staleness_ms(&self, job: &str) -> Result<i64> {
        let stats = self
            .stats(job)
            .ok_or_else(|| EiiError::NotFound(format!("etl job {job}")))?;
        Ok(self.clock.now_ms() - stats.last_refresh_at_ms)
    }

    /// Refresh one job. Returns the simulated cost in milliseconds. The
    /// shared clock advances by that cost (refreshing takes time — that is
    /// the whole tradeoff).
    pub fn refresh(&self, job_name: &str, mode: RefreshMode) -> Result<f64> {
        let job = self
            .jobs
            .get(job_name)
            .ok_or_else(|| EiiError::NotFound(format!("etl job {job_name}")))?;
        let cost_ms = match mode {
            RefreshMode::Full => self.refresh_full(job)?,
            RefreshMode::Incremental => self.refresh_incremental(job)?,
        };
        self.clock.advance_ms(cost_ms.ceil() as i64);
        let mut stats = self.stats.lock();
        let s = stats.get_mut(job_name).expect("registered");
        s.refreshes += 1;
        s.refresh_ms += cost_ms;
        s.last_refresh_at_ms = self.clock.now_ms();
        Ok(cost_ms)
    }

    /// Refresh every job.
    pub fn refresh_all(&self, mode: RefreshMode) -> Result<f64> {
        let names: Vec<String> = self.jobs.keys().cloned().collect();
        let mut total = 0.0;
        for n in names {
            total += self.refresh(&n, mode)?;
        }
        Ok(total)
    }

    fn refresh_full(&self, job: &EtlJob) -> Result<f64> {
        let (handle, table) = self.federation.resolve(&job.source_table)?;
        let (batch, cost) = handle.query(&SourceQuery::full_table(table))?;
        let transformed = job.transform(batch)?;
        let target = self.db.table(&job.target_table)?;
        let mut t = target.write();
        t.truncate();
        let n = transformed.num_rows();
        t.insert_all(transformed.into_rows())
            .map_err(|e| EiiError::Etl(format!("job {}: load failed: {e}", job.name)))?;
        let mut stats = self.stats.lock();
        let s = stats.get_mut(&job.name).expect("registered");
        s.rows_loaded += n;
        // Full refresh resets the CDC watermark to "everything seen so far".
        if let Ok((_, hw)) = handle.connector().changes_since(job.table()?, u64::MAX) {
            s.watermark = hw;
        } else if let Ok((_, hw)) = handle.connector().changes_since(job.table()?, 0) {
            s.watermark = hw;
        }
        Ok(cost.sim_ms + n as f64 * LOAD_MS_PER_ROW)
    }

    fn refresh_incremental(&self, job: &EtlJob) -> Result<f64> {
        let key = job.target_key.as_deref().ok_or_else(|| {
            EiiError::Etl(format!(
                "job {}: incremental refresh requires a target key",
                job.name
            ))
        })?;
        let (handle, table) = self.federation.resolve(&job.source_table)?;
        let watermark = self
            .stats(&job.name)
            .map(|s| s.watermark)
            .unwrap_or(0);
        let (changes, new_watermark) =
            handle.connector().changes_since(&table, watermark)?;
        let src_schema = self.federation.table_schema(&job.source_table)?;
        let target = self.db.table(&job.target_table)?;
        let key_idx = target.read().schema().index_of(None, key)?;

        let mut bytes = 0usize;
        let mut applied = 0usize;
        {
            let mut t = target.write();
            for change in &changes {
                match &change.op {
                    ChangeOp::Insert { new } => {
                        bytes += new.wire_size();
                        if let Some(row) =
                            job.transform_row(src_schema.clone(), new.clone())?
                        {
                            // Upsert semantics: a full refresh may already
                            // hold this row.
                            let k = row.get(key_idx).clone();
                            t.delete_by_pk(&k);
                            t.insert(row).map_err(|e| {
                                EiiError::Etl(format!("job {}: {e}", job.name))
                            })?;
                            applied += 1;
                        }
                    }
                    ChangeOp::Update { old, new } => {
                        bytes += old.wire_size() + new.wire_size();
                        if let Some(old_row) =
                            job.transform_row(src_schema.clone(), old.clone())?
                        {
                            t.delete_by_pk(&old_row.get(key_idx).clone());
                        }
                        if let Some(new_row) =
                            job.transform_row(src_schema.clone(), new.clone())?
                        {
                            let k: Value = new_row.get(key_idx).clone();
                            t.delete_by_pk(&k);
                            t.insert(new_row).map_err(|e| {
                                EiiError::Etl(format!("job {}: {e}", job.name))
                            })?;
                        }
                        applied += 1;
                    }
                    ChangeOp::Delete { old } => {
                        bytes += old.wire_size();
                        if let Some(old_row) =
                            job.transform_row(src_schema.clone(), old.clone())?
                        {
                            t.delete_by_pk(&old_row.get(key_idx).clone());
                            applied += 1;
                        }
                    }
                }
            }
        }
        // Charge the CDC shipment on the federation's ledger.
        let link = handle.link();
        let ship_ms = link.transfer_ms(bytes);
        self.federation
            .ledger()
            .record(job.source()?, bytes, changes.len(), ship_ms);
        let mut stats = self.stats.lock();
        let s = stats.get_mut(&job.name).expect("registered");
        s.rows_loaded += applied;
        s.watermark = new_watermark;
        Ok(ship_ms + applied as f64 * LOAD_MS_PER_ROW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etl::Transform;
    use eii_data::{row, DataType, Field, Schema};
    use eii_federation::{LinkProfile, RelationalConnector, WireFormat};
    use eii_storage::Database as SrcDb;
    use std::sync::Arc;

    fn setup() -> (Federation, SimClock, eii_storage::database::TableHandle) {
        let clock = SimClock::new();
        let crm = SrcDb::new("crm", clock.clone());
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int).not_null(),
            Field::new("name", DataType::Str),
            Field::new("region", DataType::Str),
        ]));
        let t = crm
            .create_table(TableDef::new("customers", schema).with_primary_key(0))
            .unwrap();
        {
            let mut t = t.write();
            t.insert(row![1i64, " Alice ", "west"]).unwrap();
            t.insert(row![2i64, "BOB", "east"]).unwrap();
        }
        let fed = Federation::new();
        fed.register(
            Arc::new(RelationalConnector::new(crm)),
            LinkProfile::lan(),
            WireFormat::Native,
        )
        .unwrap();
        (fed, clock, t)
    }

    fn job() -> EtlJob {
        EtlJob::copy("load_customers", "crm.customers", "dim_customers")
            .with_key("id")
            .with_transform(Transform::Normalize("name".into()))
    }

    #[test]
    fn full_refresh_loads_cleansed_rows() {
        let (fed, clock, _) = setup();
        let mut wh = Warehouse::new("wh", fed, clock);
        wh.add_job(job()).unwrap();
        let cost = wh.refresh("load_customers", RefreshMode::Full).unwrap();
        assert!(cost > 0.0);
        let t = wh.database().table("dim_customers").unwrap();
        assert_eq!(t.read().row_count(), 2);
        let (_, r) = t.read().get_by_pk(&Value::Int(1)).map(|(i, r)| (i, r.clone())).unwrap();
        assert_eq!(r.get(1), &Value::str("alice"));
    }

    #[test]
    fn incremental_refresh_applies_cdc() {
        let (fed, clock, src) = setup();
        let mut wh = Warehouse::new("wh", fed, clock);
        wh.add_job(job()).unwrap();
        wh.refresh("load_customers", RefreshMode::Full).unwrap();

        // Mutate the source after the full load.
        {
            let mut t = src.write();
            t.insert(row![3i64, "Carol", "west"]).unwrap();
            t.update_by_pk(&Value::Int(2), &[(1, Value::str("Robert"))])
                .unwrap();
            t.delete_by_pk(&Value::Int(1));
        }
        wh.refresh("load_customers", RefreshMode::Incremental).unwrap();
        let t = wh.database().table("dim_customers").unwrap();
        let t = t.read();
        assert_eq!(t.row_count(), 2);
        assert!(t.get_by_pk(&Value::Int(1)).is_none(), "delete propagated");
        assert_eq!(
            t.get_by_pk(&Value::Int(2)).unwrap().1.get(1),
            &Value::str("robert"),
            "update propagated through cleansing"
        );
        assert!(t.get_by_pk(&Value::Int(3)).is_some(), "insert propagated");
    }

    #[test]
    fn incremental_without_key_is_an_etl_error() {
        let (fed, clock, _) = setup();
        let mut wh = Warehouse::new("wh", fed, clock);
        let mut j = job();
        j.target_key = None;
        j.name = "nokey".into();
        j.target_table = "t2".into();
        wh.add_job(j).unwrap();
        assert_eq!(
            wh.refresh("nokey", RefreshMode::Incremental).unwrap_err().kind(),
            "etl"
        );
    }

    #[test]
    fn staleness_grows_until_refresh() {
        let (fed, clock, _) = setup();
        let mut wh = Warehouse::new("wh", fed, clock.clone());
        wh.add_job(job()).unwrap();
        wh.refresh("load_customers", RefreshMode::Full).unwrap();
        let s0 = wh.staleness_ms("load_customers").unwrap();
        clock.advance_ms(10_000);
        let s1 = wh.staleness_ms("load_customers").unwrap();
        assert_eq!(s1 - s0, 10_000);
        wh.refresh("load_customers", RefreshMode::Full).unwrap();
        assert!(wh.staleness_ms("load_customers").unwrap() < s1);
    }

    #[test]
    fn refresh_costs_accumulate() {
        let (fed, clock, _) = setup();
        let mut wh = Warehouse::new("wh", fed, clock);
        wh.add_job(job()).unwrap();
        wh.refresh("load_customers", RefreshMode::Full).unwrap();
        wh.refresh("load_customers", RefreshMode::Full).unwrap();
        let s = wh.stats("load_customers").unwrap();
        assert_eq!(s.refreshes, 2);
        assert_eq!(s.rows_loaded, 4);
        assert!(wh.total_refresh_ms() > 0.0);
    }

    #[test]
    fn incremental_ships_less_than_full_on_small_deltas() {
        let (fed, clock, src) = setup();
        // Grow the source so full refreshes are visibly expensive.
        {
            let mut t = src.write();
            for i in 10..1000i64 {
                t.insert(row![i, format!("name{i}"), "west"]).unwrap();
            }
        }
        let mut wh = Warehouse::new("wh", fed.clone(), clock);
        wh.add_job(job()).unwrap();
        wh.refresh("load_customers", RefreshMode::Full).unwrap();

        // One small change.
        src.write().insert(row![5000i64, "zed", "east"]).unwrap();
        fed.ledger().reset();
        wh.refresh("load_customers", RefreshMode::Incremental).unwrap();
        let incr_bytes = fed.ledger().total().bytes;
        fed.ledger().reset();
        wh.refresh("load_customers", RefreshMode::Full).unwrap();
        let full_bytes = fed.ledger().total().bytes;
        assert!(
            incr_bytes * 10 < full_bytes,
            "incr={incr_bytes} full={full_bytes}"
        );
    }

    #[test]
    fn duplicate_job_rejected() {
        let (fed, clock, _) = setup();
        let mut wh = Warehouse::new("wh", fed, clock);
        wh.add_job(job()).unwrap();
        assert_eq!(wh.add_job(job()).unwrap_err().kind(), "already_exists");
    }
}
