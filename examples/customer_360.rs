//! Customer 360: the paper's first successful EII application — "provide
//! the customer-facing worker a global view of a customer whose data is
//! residing in multiple sources" (Halevy §1), plus Sikka's enterprise-search
//! scenario ("Jamie needs to find all the information related to a
//! customer") with security filtering.
//!
//! Sources: relational CRM, web-service order system (access-limited),
//! document-store support tickets, and a contracts corpus.
//!
//! Run with: `cargo run --example customer_360`

use std::sync::Arc;

use eii::prelude::*;
use eii::row;
use eii::search::{index_docstore, index_federation_table, EnterpriseSearch, SearchIndex};

fn main() -> Result<()> {
    let clock = SimClock::new();

    // CRM (relational).
    let crm = Database::new("crm", clock.clone());
    let customers = crm.create_table(
        TableDef::new(
            "customers",
            Arc::new(Schema::new(vec![
                Field::new("id", DataType::Int).not_null(),
                Field::new("name", DataType::Str),
                Field::new("region", DataType::Str),
                Field::new("credit_rating", DataType::Str),
            ])),
        )
        .with_primary_key(0),
    )?;
    {
        let mut t = customers.write();
        t.insert(row![1i64, "Acme Corp", "west", "AA"])?;
        t.insert(row![2i64, "Globex", "east", "B"])?;
    }

    // Orders behind a web service: only reachable by customer_id.
    let orders_db = Database::new("orders", clock.clone());
    let orders = orders_db.create_table(
        TableDef::new(
            "orders",
            Arc::new(Schema::new(vec![
                Field::new("order_id", DataType::Int).not_null(),
                Field::new("customer_id", DataType::Int),
                Field::new("status", DataType::Str),
                Field::new("total", DataType::Float),
            ])),
        )
        .with_primary_key(0),
    )?;
    {
        let mut t = orders.write();
        t.create_hash_index(1);
        t.insert(row![500i64, 1i64, "shipped", 1200.0])?;
        t.insert(row![501i64, 1i64, "open", 640.0])?;
        t.insert(row![502i64, 2i64, "shipped", 90.0])?;
    }

    // Support tickets live in a schema-less document store.
    let tickets = DocStore::new();
    tickets.insert(Document::from_records(
        "weekly ticket export",
        &[
            vec![
                ("ticket_id", "9001".into()),
                ("customer_id", "1".into()),
                ("severity", "2".into()),
                ("subject", "Acme Corp renewal question".into()),
            ],
            vec![
                ("ticket_id", "9002".into()),
                ("customer_id", "1".into()),
                ("severity", "1".into()),
                ("subject", "Acme outage follow-up".into()),
            ],
        ],
    ));
    let support = DocumentConnector::new("support", tickets).define_table(VirtualTable {
        name: "tickets".into(),
        columns: vec![
            ("ticket_id".into(), "//row/ticket_id".into(), DataType::Int),
            ("customer_id".into(), "//row/customer_id".into(), DataType::Int),
            ("severity".into(), "//row/severity".into(), DataType::Int),
            ("subject".into(), "//row/subject".into(), DataType::Str),
        ],
    });

    // Contracts: unstructured documents for search only.
    let contracts = DocStore::new();
    contracts.insert(Document::from_text(
        "Acme Corp master agreement",
        "Renewal due 2005-09-01. Gold support tier. Credit terms net 30.",
    ));
    contracts.insert(Document::from_text(
        "Globex purchase order",
        "One-time purchase, no support contract.",
    ));

    // ── Assemble the system ─────────────────────────────────────────────
    let system = EiiSystem::new(clock);
    system.add_source(
        Arc::new(RelationalConnector::new(crm)),
        LinkProfile::lan(),
        WireFormat::Native,
    )?;
    system.add_source(
        Arc::new(WebServiceConnector::new("orders", orders_db).require_binding("orders", "customer_id")),
        LinkProfile::wan(),
        WireFormat::Native,
    )?;
    system.add_source(Arc::new(support), LinkProfile::lan(), WireFormat::Native)?;

    // Metadata: describe sources, restrict credit data to account managers.
    system.catalog().describe_source(
        "crm",
        SourceMeta {
            description: "Customer relationship management system".into(),
            owner: "sales-it".into(),
            tags: vec!["customer".into(), "gold".into()],
        },
    );
    system.catalog().grant("crm", "account-manager");

    // The 360 view: one definition, reused by every query.
    system.execute(
        "CREATE VIEW customer360 AS \
         SELECT c.id, c.name, c.region, c.credit_rating, o.order_id, o.status, o.total \
         FROM crm.customers c JOIN orders.orders o ON c.id = o.customer_id",
    )?;

    println!("== Acme's open position (live, three sources) ==");
    let out = system.execute(
        "SELECT name, order_id, status, total FROM customer360 WHERE id = 1 ORDER BY order_id",
    )?;
    println!("{}", out.rows()?);

    println!("== Severity-1 tickets joined against the CRM ==");
    let out = system.execute(
        "SELECT c.name, t.subject FROM crm.customers c \
         JOIN support.tickets t ON c.id = t.customer_id WHERE t.severity = 1",
    )?;
    println!("{}", out.rows()?);

    // ── Enterprise search across everything ────────────────────────────
    let mut index = SearchIndex::new();
    index_federation_table(&mut index, system.federation(), "crm.customers")?;
    index_docstore(&mut index, "contracts", &contracts)?;
    system.attach_search_service(EnterpriseSearch::new(index, system.catalog().clone()));

    for role in ["intern", "account-manager"] {
        println!("== SEARCH 'acme renewal' as {role} ==");
        match system.execute_as("SEARCH 'acme renewal' LIMIT 5", role)? {
            eii::ExecOutcome::SearchHits(hits) => {
                for h in hits {
                    println!("  [{:>9}] {:<24} {:.3}  {}", h.source, h.item_ref, h.score, h.snippet);
                }
            }
            _ => unreachable!(),
        }
    }
    Ok(())
}
