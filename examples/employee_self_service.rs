//! Carey's employee self-service portal (§4): reads are a mediated EII view
//! ("express the integration of employee data once, as a view, and let the
//! system choose the right query plan"), while updates — "insert employee
//! into company is really a business process" — run as an EAI saga with
//! compensation.
//!
//! Run with: `cargo run --example employee_self_service`

use std::collections::HashMap;
use std::sync::Arc;

use eii::eai::{ProcessDef, SagaOutcome, Step};
use eii::federation::UpdateOp;
use eii::prelude::*;
use eii::row;

fn main() -> Result<()> {
    let clock = SimClock::new();

    // HR system.
    let hr = Database::new("hr", clock.clone());
    hr.create_table(
        TableDef::new(
            "employees",
            Arc::new(Schema::new(vec![
                Field::new("emp_id", DataType::Int).not_null(),
                Field::new("name", DataType::Str),
                Field::new("department", DataType::Str),
            ])),
        )
        .with_primary_key(0),
    )?;

    // Facilities system.
    let facilities = Database::new("facilities", clock.clone());
    facilities.create_table(
        TableDef::new(
            "offices",
            Arc::new(Schema::new(vec![
                Field::new("office_id", DataType::Int).not_null(),
                Field::new("occupant", DataType::Int),
                Field::new("location", DataType::Str),
            ])),
        )
        .with_primary_key(0),
    )?;

    // IT asset system.
    let it = Database::new("it", clock.clone());
    it.create_table(
        TableDef::new(
            "assets",
            Arc::new(Schema::new(vec![
                Field::new("asset_id", DataType::Int).not_null(),
                Field::new("owner", DataType::Int),
                Field::new("model", DataType::Str),
            ])),
        )
        .with_primary_key(0),
    )?;

    let system = EiiSystem::new(clock.clone());
    for db in [hr, facilities, it] {
        system.add_source(
            Arc::new(RelationalConnector::new(db)),
            LinkProfile::lan(),
            WireFormat::Native,
        )?;
    }

    // ── Reads: the single view of employee, defined once ───────────────
    system.execute(
        "CREATE VIEW employee_view AS \
         SELECT e.emp_id, e.name, e.department, o.location, a.model \
         FROM hr.employees e \
         LEFT JOIN facilities.offices o ON e.emp_id = o.occupant \
         LEFT JOIN it.assets a ON e.emp_id = a.owner",
    )?;

    // ── Updates: the onboarding business process ────────────────────────
    let onboard = |_emp_id: i64, name: &str, fail_approval: bool| {
        let name = name.to_string();
        ProcessDef::new("onboard_employee")
            .step(
                Step::new("create_hr_record", move |env| {
                    let id = env.get("emp_id").unwrap().as_int().unwrap();
                    let nm = env.get("name").unwrap();
                    env.federation.source("hr")?.update(&UpdateOp::Insert {
                        table: "employees".into(),
                        row: row![id, nm.to_string(), "engineering"],
                    })?;
                    Ok(())
                })
                .with_compensation(move |env| {
                    let id = env.get("emp_id").unwrap();
                    env.federation.source("hr")?.update(&UpdateOp::DeleteByKey {
                        table: "employees".into(),
                        key: id,
                    })?;
                    Ok(())
                })
                .taking_ms(1_000),
            )
            .step(
                Step::new("provision_office", move |env| {
                    let id = env.get("emp_id").unwrap().as_int().unwrap();
                    env.federation.source("facilities")?.update(&UpdateOp::Insert {
                        table: "offices".into(),
                        row: row![9000 + id, id, "bldg 7"],
                    })?;
                    Ok(())
                })
                .with_compensation(move |env| {
                    let id = env.get("emp_id").unwrap().as_int().unwrap();
                    env.federation
                        .source("facilities")?
                        .update(&UpdateOp::DeleteByKey {
                            table: "offices".into(),
                            key: Value::Int(9000 + id),
                        })?;
                    Ok(())
                })
                // "possibly needing to run over a period of hours or days"
                .taking_ms(86_400_000),
            )
            .step(
                Step::new("order_laptop_with_approval", move |env| {
                    if fail_approval {
                        return Err(EiiError::Process("purchase approval denied".into()));
                    }
                    let id = env.get("emp_id").unwrap().as_int().unwrap();
                    env.federation.source("it")?.update(&UpdateOp::Insert {
                        table: "assets".into(),
                        row: row![5000 + id, id, "ThinkPad T42"],
                    })?;
                    Ok(())
                })
                .taking_ms(3_600_000),
            )
            .step(Step::new("announce", {
                let name = name.clone();
                move |env| {
                    env.broker.publish(eii::eai::Message {
                        topic: "hr.hired".into(),
                        key: env.get("emp_id").unwrap(),
                        body: format!("{name} onboarded"),
                    });
                    Ok(())
                }
            }))
    };

    let announcements = system.broker().subscribe("hr.hired");

    // Successful onboarding.
    let mut vars = HashMap::new();
    vars.insert("emp_id".to_string(), Value::Int(1));
    vars.insert("name".to_string(), Value::str("Jamie"));
    let (outcome, journal) = system.run_process(&onboard(1, "Jamie", false), vars)?;
    println!("onboard #1 outcome: {outcome:?} ({} journal entries)", journal.len());
    println!("announcement: {:?}", announcements.try_recv().map(|m| m.body));

    // Rejected onboarding: approval fails AFTER office provisioning — the
    // saga must undo the HR record and the office, exactly the compensation
    // scenario Carey describes.
    let mut vars = HashMap::new();
    vars.insert("emp_id".to_string(), Value::Int(2));
    vars.insert("name".to_string(), Value::str("Robin"));
    let (outcome, journal) = system.run_process(&onboard(2, "Robin", true), vars)?;
    println!("\nonboard #2 outcome: {outcome:?}");
    for e in &journal {
        println!("  @{:>12} {:<28} {:?}", e.at_ms, e.step, e.event);
    }
    assert!(matches!(outcome, SagaOutcome::Compensated { .. }));

    // ── The view answers all the access paths the portal needs ─────────
    println!("\n== employee_view after both processes ==");
    let out = system.execute("SELECT * FROM employee_view ORDER BY emp_id")?;
    println!("{}", out.rows()?);
    println!("Robin (emp 2) is absent: every partial effect was compensated.");

    for sql in [
        "SELECT name FROM employee_view WHERE emp_id = 1",
        "SELECT name FROM employee_view WHERE department = 'engineering'",
        "SELECT name FROM employee_view WHERE model = 'ThinkPad T42'",
    ] {
        let n = system.execute(sql)?.rows()?.num_rows();
        println!("{sql} -> {n} row(s)");
    }
    Ok(())
}
