//! Fault tolerance end to end: inject source faults, harden with
//! retries + a circuit breaker, and degrade to stale snapshots when a
//! source stays dead.
//!
//! ```bash
//! cargo run -p eii --release --example fault_tolerance
//! ```

use std::sync::Arc;

use eii::prelude::*;
use eii::row;

fn main() -> Result<()> {
    let clock = SimClock::new();
    let sys = EiiSystem::new(clock.clone());

    let crm = Database::new("crm", clock.clone());
    let customers = crm
        .create_table(
            TableDef::new(
                "customers",
                Arc::new(Schema::new(vec![
                    Field::new("id", DataType::Int).not_null(),
                    Field::new("name", DataType::Str),
                ])),
            )
            .with_primary_key(0),
        )?;
    {
        let mut t = customers.write();
        for (i, name) in ["Acme Corp", "Globex", "Initech"].iter().enumerate() {
            t.insert(row![i as i64, *name])?;
        }
    }

    let sales = Database::new("sales", clock.clone());
    let orders = sales
        .create_table(
            TableDef::new(
                "orders",
                Arc::new(Schema::new(vec![
                    Field::new("order_id", DataType::Int).not_null(),
                    Field::new("customer_id", DataType::Int),
                    Field::new("total", DataType::Float),
                ])),
            )
            .with_primary_key(0),
        )?;
    {
        let mut t = orders.write();
        for i in 0..9i64 {
            t.insert(row![i, i % 3, (i as f64 + 1.0) * 100.0])?;
        }
    }

    sys.add_source(
        Arc::new(RelationalConnector::new(crm)),
        LinkProfile::lan(),
        WireFormat::Native,
    )?;
    sys.add_source(
        Arc::new(RelationalConnector::new(sales)),
        LinkProfile::wan(),
        WireFormat::Native,
    )?;

    let sql = "SELECT c.name, SUM(o.total) AS revenue \
               FROM crm.customers c JOIN sales.orders o ON c.id = o.customer_id \
               GROUP BY c.name ORDER BY revenue DESC";

    println!("== Healthy federation ==");
    print_result(&sys, sql)?;

    // Take fallback snapshots while everything is still alive.
    sys.snapshot_fallback("crm.customers")?;
    sys.snapshot_fallback("sales.orders")?;

    // A transient outage: sales is dark for the first 30 simulated ms.
    println!("\n== Transient outage on sales, hardened with retries ==");
    sys.federation()
        .inject_faults("sales", FaultProfile::none().with_outage(0, 30))?;
    sys.federation().harden(
        "sales",
        RetryPolicy::standard().with_attempts(5),
        CircuitBreakerConfig::default(),
    )?;
    print_result(&sys, sql)?;
    println!(
        "retries recorded against sales: {}",
        sys.federation().ledger().traffic("sales").retries
    );

    // A hard outage: every request to sales now fails. Strict mode
    // surfaces the error; fallback mode serves the stale snapshot.
    println!("\n== Hard outage on sales ==");
    sys.federation()
        .inject_faults("sales", FaultProfile::failing(1.0, 7))?;
    clock.advance_ms(60_000);
    match sys.execute(sql) {
        Ok(_) => println!("unexpected success"),
        Err(e) => println!("strict policy: {e}"),
    }

    sys.set_degradation_policy(DegradationPolicy::Fallback);
    println!("\n== Same outage, degrading to the stale snapshot ==");
    print_result(&sys, sql)?;

    Ok(())
}

fn print_result(sys: &EiiSystem, sql: &str) -> Result<()> {
    let out = sys.execute(sql)?;
    let result = out.query_result()?;
    for r in result.batch.rows() {
        println!("  {r}");
    }
    if result.fully_live() {
        println!("all answers live");
    } else {
        for report in &result.degraded {
            println!(
                "degraded: {}.{} served {} ms stale ({})",
                report.source,
                report.table,
                report.stale_ms.unwrap_or(0),
                report.error
            );
        }
    }
    Ok(())
}
