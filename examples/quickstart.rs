//! Quickstart: integrate two live sources behind one mediated schema and
//! query them with plain SQL — no warehouse, no copies.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use eii::prelude::*;
use eii::row;

fn main() -> Result<()> {
    // ── 1. Two independent enterprise systems ──────────────────────────
    let clock = SimClock::new();

    let crm = Database::new("crm", clock.clone());
    let customers = crm.create_table(
        TableDef::new(
            "customers",
            Arc::new(Schema::new(vec![
                Field::new("id", DataType::Int).not_null(),
                Field::new("name", DataType::Str),
                Field::new("region", DataType::Str),
            ])),
        )
        .with_primary_key(0),
    )?;
    {
        let mut t = customers.write();
        t.insert(row![1i64, "Acme Corp", "west"])?;
        t.insert(row![2i64, "Globex", "east"])?;
        t.insert(row![3i64, "Initech", "west"])?;
    }

    let sales = Database::new("sales", clock.clone());
    let orders = sales.create_table(
        TableDef::new(
            "orders",
            Arc::new(Schema::new(vec![
                Field::new("order_id", DataType::Int).not_null(),
                Field::new("customer_id", DataType::Int),
                Field::new("total", DataType::Float),
            ])),
        )
        .with_primary_key(0),
    )?;
    {
        let mut t = orders.write();
        for i in 0..9i64 {
            t.insert(row![i, i % 3 + 1, (i as f64 + 1.0) * 100.0])?;
        }
    }

    // ── 2. Register them with the EII server ───────────────────────────
    let system = EiiSystem::new(clock);
    system.add_source(
        Arc::new(RelationalConnector::new(crm)),
        LinkProfile::lan(),
        WireFormat::Native,
    )?;
    system.add_source(
        Arc::new(RelationalConnector::new(sales)),
        LinkProfile::wan(),
        WireFormat::Native,
    )?;

    // ── 3. A mediated view spanning both sources ───────────────────────
    system.execute(
        "CREATE VIEW customer_orders AS \
         SELECT c.id, c.name, c.region, o.order_id, o.total \
         FROM crm.customers c JOIN sales.orders o ON c.id = o.customer_id",
    )?;

    // ── 4. Query it like one database ──────────────────────────────────
    let sql = "SELECT name, COUNT(*) AS orders, SUM(total) AS revenue \
               FROM customer_orders WHERE region = 'west' \
               GROUP BY name ORDER BY revenue DESC";
    println!("{}\n", system.explain(sql)?);
    let out = system.execute(sql)?;
    let result = out.query_result()?;
    println!("{}", result.batch);
    println!(
        "live federated query: {:.2} simulated ms, {} bytes shipped, {} source requests",
        result.cost.sim_ms, result.cost.bytes, result.cost.requests
    );
    Ok(())
}
