//! Digital dashboard: "digital dashboards that required tracking information
//! from multiple sources in real time" (Halevy §1) — and Draper's answer to
//! how much freshness actually costs: each dashboard tile is a materialized
//! view whose administrator "was able to choose whether she wanted live data
//! for a particular view or not".
//!
//! Run with: `cargo run --example realtime_dashboard`

use std::sync::Arc;

use eii::matview::{MatViewManager, RefreshPolicy};
use eii::prelude::*;
use eii::row;

fn main() -> Result<()> {
    let clock = SimClock::new();

    // An operational order system that keeps changing.
    let ops = Database::new("ops", clock.clone());
    let orders = ops.create_table(
        TableDef::new(
            "orders",
            Arc::new(Schema::new(vec![
                Field::new("order_id", DataType::Int).not_null(),
                Field::new("region", DataType::Str),
                Field::new("total", DataType::Float),
            ])),
        )
        .with_primary_key(0),
    )?;
    for i in 0..200i64 {
        orders
            .write()
            .insert(row![i, format!("r{}", i % 4), (i % 13) as f64 * 10.0])?;
    }

    let system = EiiSystem::new(clock.clone());
    system.add_source(
        Arc::new(RelationalConnector::new(ops)),
        LinkProfile::wan(),
        WireFormat::Native,
    )?;

    // Three tiles, three freshness policies.
    let views = MatViewManager::new(system.federation().clone(), clock.clone());
    let tile_sql = "SELECT region, COUNT(*) AS orders, SUM(total) AS revenue \
                    FROM ops.orders GROUP BY region ORDER BY region";
    views.define("tile_live", tile_sql, system.catalog(), RefreshPolicy::Live)?;
    views.define(
        "tile_periodic",
        tile_sql,
        system.catalog(),
        RefreshPolicy::Periodic { interval_ms: 60_000 },
    )?;
    views.define("tile_manual", tile_sql, system.catalog(), RefreshPolicy::Manual)?;

    println!("tile          | fetch | recomputed | staleness (ms) | cost (sim ms)");
    println!("--------------+-------+------------+----------------+--------------");
    for round in 0..3 {
        // The operational system keeps taking orders between dashboard
        // refreshes.
        for i in 0..50i64 {
            let id = 1000 + round * 100 + i;
            orders
                .write()
                .insert(row![id, "r0", 25.0])?;
        }
        clock.advance_ms(30_000);
        for tile in ["tile_live", "tile_periodic", "tile_manual"] {
            let (_, outcome) = views.fetch(tile)?;
            println!(
                "{tile:<13} | {round:>5} | {:<10} | {:>14} | {:>12.2}",
                outcome.recomputed, outcome.staleness_ms, outcome.sim_ms
            );
        }
    }

    println!(
        "\nrecompute counts: live={} periodic={} manual={}",
        views.refresh_count("tile_live"),
        views.refresh_count("tile_periodic"),
        views.refresh_count("tile_manual"),
    );
    println!(
        "total refresh cost: live={:.1} ms, periodic={:.1} ms, manual={:.1} ms",
        views.total_refresh_ms("tile_live"),
        views.total_refresh_ms("tile_periodic"),
        views.total_refresh_ms("tile_manual"),
    );
    println!("\nThe tradeoff Halevy describes: freshness is bought with network and");
    println!("source load; the periodic tile pays a fraction of the live tile's cost");
    println!("for bounded staleness.");
    Ok(())
}
