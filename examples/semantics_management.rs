//! Semantics management: Pollock's "the data structure contains no formal
//! semantics" and Rosenthal's agility measurement, on real schemas.
//!
//! Eight systems spell the same customer concept differently. We integrate
//! them twice — pairwise mappings vs a hub ontology — then run the same
//! schema-evolution script against both and compare the repair bills.
//!
//! Run with: `cargo run --example semantics_management`

use eii::data::DataType;
use eii::semantics::{
    measure_agility, AdminLedger, HubRegistry, MappingRegistry, PairwiseRegistry,
    SchemaChange, SourceSchema,
};
use eii::semantics::ontology::enterprise_ontology;

fn enterprise_schemas() -> Vec<SourceSchema> {
    let spellings: Vec<Vec<(&str, DataType)>> = vec![
        vec![("cust_id", DataType::Int), ("cust_nm", DataType::Str), ("reg", DataType::Str)],
        vec![("customerId", DataType::Int), ("customerName", DataType::Str), ("region", DataType::Str)],
        vec![("id", DataType::Int), ("name", DataType::Str), ("segment", DataType::Str)],
        vec![("CUST_NO", DataType::Int), ("NM", DataType::Str), ("REGION", DataType::Str)],
    ];
    (0..8)
        .map(|i| SourceSchema {
            name: format!("system{i}"),
            columns: spellings[i % spellings.len()]
                .iter()
                .map(|(n, t)| (n.to_string(), *t))
                .collect(),
        })
        .collect()
}

fn evolution_script() -> Vec<(String, SchemaChange)> {
    vec![
        (
            "system0".into(),
            SchemaChange::RenameColumn { from: "cust_nm".into(), to: "customer_full_name".into() },
        ),
        (
            "system1".into(),
            SchemaChange::ChangeType { name: "customerId".into(), data_type: DataType::Str },
        ),
        (
            "system2".into(),
            SchemaChange::AddColumn { name: "customer_region".into(), data_type: DataType::Str },
        ),
        (
            "system3".into(),
            SchemaChange::RemoveColumn { name: "REGION".into() },
        ),
    ]
}

fn main() -> eii::data::Result<()> {
    // ── Integrate 8 systems, both topologies ────────────────────────────
    let mut pairwise = PairwiseRegistry::new(AdminLedger::new());
    let mut hub = HubRegistry::new(enterprise_ontology(), AdminLedger::new());
    for s in enterprise_schemas() {
        pairwise.register(s.clone())?;
        hub.register(s)?;
    }

    println!("== Integration cost (8 systems) ==");
    println!(
        "pairwise: {:>4} mappings, admin effort {:>7.1}",
        pairwise.mapping_count(),
        pairwise.ledger().total_effort()
    );
    println!(
        "hub     : {:>4} mappings, admin effort {:>7.1} (includes authoring the ontology)",
        hub.mapping_count(),
        hub.ledger().total_effort()
    );

    // Translation works the same through either topology.
    println!("\n== Translating system0.cust_nm into system1's vocabulary ==");
    println!(
        "pairwise -> {:?}   hub -> {:?}",
        pairwise.correspondence("system0", "cust_nm", "system1"),
        hub.correspondence("system0", "cust_nm", "system1"),
    );

    // ── Agility: the same change script against both ────────────────────
    let pw_report = measure_agility(&mut pairwise, &evolution_script())?;
    let hub_report = measure_agility(&mut hub, &evolution_script())?;
    println!("\n== Agility under Rosenthal's predictable changes ==");
    println!(
        "pairwise: {} changes -> {} mappings touched ({:.1}/change), effort {:.1}",
        pw_report.changes, pw_report.mappings_touched, pw_report.touched_per_change, pw_report.admin_effort
    );
    println!(
        "hub     : {} changes -> {} mappings touched ({:.1}/change), effort {:.1}",
        hub_report.changes, hub_report.mappings_touched, hub_report.touched_per_change, hub_report.admin_effort
    );
    println!(
        "\nThe hub pays an up-front ontology cost but repairs O(1) mappings per\n\
         change where pairwise repairs O(N) — \"EII companies should prepare to\n\
         be assimilated\" into shared-metadata platforms (Rosenthal §7)."
    );
    Ok(())
}
