//! Offline shim for the `criterion` crate.
//!
//! Runs each registered benchmark for a fixed, small number of iterations and
//! prints mean wall-clock time per iteration. No statistics, no HTML reports —
//! just enough to keep `cargo bench` working and producing comparable
//! numbers in this offline environment.

use std::fmt;
use std::time::Instant;

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 25;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self {
        run_one(&id.to_string(), &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher {
        iters: MEASURE_ITERS,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns / u128::from(b.iters.max(1));
    println!("bench {id:<48} {per_iter:>12} ns/iter ({MEASURE_ITERS} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count >= MEASURE_ITERS);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| n * n)
        });
        g.finish();
    }
}
