//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` backed by a
//! `VecDeque` + `Condvar`. Supports the operations the workspace's message
//! broker uses: cloneable senders, blocking `recv`, `try_recv`, `len`,
//! `is_empty`, and disconnect detection in both directions.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Error returned when sending into a channel with no live receivers.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert!(rx.is_empty());
        }

        #[test]
        fn dropped_receiver_fails_send() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn dropped_senders_disconnect_recv() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(5).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv(), Ok(42));
        }
    }
}
