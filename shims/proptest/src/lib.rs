//! Offline shim for the `proptest` crate.
//!
//! Provides the strategy combinators, macros, and prelude this workspace's
//! property tests use. Cases are generated deterministically (seeded from the
//! test name), and there is no shrinking: a failing case panics with the
//! formatted inputs so it can be reproduced by rerunning the test.

pub mod test_runner {
    use std::fmt;

    /// Deterministic per-test random source.
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Seed from the test name (FNV-1a) so every run of a given test
        /// explores the same cases.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            use rand::SeedableRng;
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(h),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A failed `prop_assert!` — carries the formatted assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `&'static str` is a regex strategy (subset: literals, `[a-z]` classes,
    /// `{n}` / `{m,n}` / `?` / `+` / `*` quantifiers).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_regex(self, rng)
        }
    }

    fn generate_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("proptest shim: unclosed `[` in regex {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            assert!(
                !alphabet.is_empty(),
                "proptest shim: empty character class in regex {pattern:?}"
            );
            let (lo, hi) = parse_quantifier(&chars, &mut i, pattern);
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| *i + p)
                    .unwrap_or_else(|| panic!("proptest shim: unclosed `{{` in regex {pattern:?}"));
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("regex {m,n} lower bound"),
                        hi.trim().parse().expect("regex {m,n} upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("regex {n} count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            _ => (1, 1),
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Boxing helper used by `prop_oneof!` so arm types unify via coercion.
    pub fn union_box<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// `BTreeMap` with up to `size` entries (duplicate keys collapse).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    /// Raw bit patterns: includes NaNs, infinities, and subnormals, which is
    /// exactly what total-order property tests want to see.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Runner configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            $(let $arg = $strat;)+
            for __case in 0..__cfg.cases {
                // The initializer runs before the new bindings exist, so
                // `$arg` on the right still names the strategy; afterwards it
                // names this case's generated value (scoped to the loop body).
                #[allow(unused_parens)]
                let ($($arg),+) = (
                    $($crate::strategy::Strategy::generate(&$arg, &mut __rng)),+
                );
                let __inputs = ::std::vec![
                    $(::std::format!("{} = {:?}", stringify!($arg), &$arg)),+
                ].join(", ");
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __cfg.cases,
                        e,
                        __inputs
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::union_box($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_regex_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..200 {
            let v = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&v));
            let s = Strategy::generate(&"[a-d]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
        }
    }

    #[test]
    fn oneof_and_combinators_compose() {
        let mut rng = crate::test_runner::TestRng::for_test("compose");
        let strat = prop_oneof![
            (0i64..10).prop_map(|k| format!("n{k}")),
            Just("fixed".to_string()),
        ];
        let combos = crate::collection::vec(strat, 1..4);
        for _ in 0..100 {
            let vs = Strategy::generate(&combos, &mut rng);
            assert!((1..4).contains(&vs.len()));
            assert!(vs.iter().all(|v| v == "fixed" || v.starts_with('n')));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn harness_runs_and_passes(a in 0i64..100, b in any::<bool>()) {
            prop_assert!(a >= 0);
            prop_assert_eq!(b & !b, false);
        }
    }
}
