//! Offline shim for the `rand` crate.
//!
//! Deterministic, seedable generation with the `rand 0.8` call surface the
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen_bool`, `Rng::gen`). The generator is SplitMix64: tiny, fast,
//! and statistically fine for benchmark data and fault injection. Sequences
//! differ from upstream `rand`, which is acceptable — every consumer in this
//! workspace only relies on *determinism per seed*, not on specific streams.

use std::ops::Range;

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce (stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

/// Object-safe generator core.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Element types `gen_range` can draw uniformly (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    fn sample_range(start: Self, end: Self, rng: &mut dyn RngCore) -> Self;
}

/// Ranges `Rng::gen_range` accepts. The single blanket impl ties the range's
/// element type to the output type during inference, exactly like upstream
/// rand — `slice[rng.gen_range(0..3)]` must infer `usize`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(start: Self, end: Self, rng: &mut dyn RngCore) -> Self {
                let span = (end as i128 - start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }

        impl Standard for $t {
            fn from_rng(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range(start: Self, end: Self, rng: &mut dyn RngCore) -> Self {
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform in [0, 1) from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Generation methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (API stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zero fixed point without perturbing other seeds.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias kept for call sites that ask for the small generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
