//! Offline shim for the `serde` crate.
//!
//! Instead of serde's visitor-based data model, this shim serializes through
//! an owned JSON tree ([`Json`]): `Serialize` renders a value into `Json`,
//! `Deserialize` rebuilds a value from `&Json`. The `serde_derive` shim
//! generates impls against this model, and the `serde_json` shim provides the
//! text layer (parse/print). Externally-tagged enum encoding matches real
//! serde: unit variants become strings, data variants become single-key
//! objects.

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// Owned JSON tree. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view; integral floats qualify so `3` and `3.0` interconvert.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Short name of the JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Pretty-print with two-space indentation (serde_json style).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => {
                let _ = fmt::Write::write_fmt(out, format_args!("{other}"));
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact rendering with no whitespace (`{"id":"e0"}`).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    pub fn expected(what: &str, got: &str) -> Self {
        DeError(format!("expected {got} for {what}"))
    }

    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for {ty}"))
    }

    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("field `{field}`: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render a value into the JSON tree.
pub trait Serialize {
    fn to_json(&self) -> Json;
}

/// Rebuild a value from a JSON tree.
pub trait Deserialize: Sized {
    fn from_json(json: &Json) -> Result<Self, DeError>;
}

// -------------------------------------------------- derive support helpers

/// Externally-tagged enum payload: `{"Variant": payload}`.
pub fn variant(name: &str, payload: Json) -> Json {
    Json::Obj(vec![(name.to_string(), payload)])
}

/// Look up and deserialize a struct field; a missing key deserializes from
/// `null` so `Option` fields default to `None`.
pub fn field<T: Deserialize>(obj: &[(String, Json)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_json(v).map_err(|e| e.in_field(name)),
        None => T::from_json(&Json::Null)
            .map_err(|_| DeError(format!("missing field `{name}`"))),
    }
}

/// Classified externally-tagged enum encoding.
pub enum EnumRepr<'a> {
    /// `"Variant"`.
    Unit(&'a str),
    /// `{"Variant": payload}`.
    Data(&'a str, &'a Json),
    Invalid,
}

pub fn enum_repr(json: &Json) -> EnumRepr<'_> {
    match json {
        Json::Str(s) => EnumRepr::Unit(s),
        Json::Obj(entries) if entries.len() == 1 => EnumRepr::Data(&entries[0].0, &entries[0].1),
        _ => EnumRepr::Invalid,
    }
}

/// Fixed-arity array payload for tuple structs/variants.
pub fn tuple_payload<'a>(json: &'a Json, n: usize, what: &str) -> Result<&'a [Json], DeError> {
    let arr = json
        .as_arr()
        .ok_or_else(|| DeError::expected(what, "array"))?;
    if arr.len() != n {
        return Err(DeError(format!(
            "{what}: expected {n} elements, found {}",
            arr.len()
        )));
    }
    Ok(arr)
}

// --------------------------------------------------------- impl: primitives

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_json(json: &Json) -> Result<Self, DeError> {
                let i = json
                    .as_i64()
                    .ok_or_else(|| DeError::expected(stringify!($t), json.type_name()))?;
                <$t>::try_from(i)
                    .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        json.as_bool()
            .ok_or_else(|| DeError::expected("bool", json.type_name()))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        json.as_f64()
            .ok_or_else(|| DeError::expected("f64", json.type_name()))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        f64::from_json(json).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        json.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", json.type_name()))
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        Ok(json.clone())
    }
}

// --------------------------------------------------------- impl: containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        T::from_json(json).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        T::from_json(json).map(Arc::new)
    }
}

impl Deserialize for Arc<str> {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        json.as_str()
            .map(Arc::from)
            .ok_or_else(|| DeError::expected("string", json.type_name()))
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        T::from_json(json).map(Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        json.as_arr()
            .ok_or_else(|| DeError::expected("Vec", json.type_name()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        match json {
            Json::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(DeError::expected("map object", other.type_name())),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        let arr = tuple_payload(json, 2, "2-tuple")?;
        Ok((A::from_json(&arr[0])?, B::from_json(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json(json: &Json) -> Result<Self, DeError> {
        let arr = tuple_payload(json, 3, "3-tuple")?;
        Ok((
            A::from_json(&arr[0])?,
            B::from_json(&arr[1])?,
            C::from_json(&arr[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_display_has_no_spaces() {
        let j = Json::Obj(vec![
            ("id".into(), Json::Str("e0".into())),
            ("n".into(), Json::Int(3)),
        ]);
        assert_eq!(j.to_string(), r#"{"id":"e0","n":3}"#);
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let j = v.to_json();
        assert_eq!(Vec::<Option<u32>>::from_json(&j).unwrap(), v);
    }

    #[test]
    fn missing_field_yields_none_for_option() {
        let obj = vec![("present".to_string(), Json::Int(1))];
        let present: Option<i64> = field(&obj, "present").unwrap();
        let absent: Option<i64> = field(&obj, "absent").unwrap();
        assert_eq!(present, Some(1));
        assert_eq!(absent, None);
        assert!(field::<i64>(&obj, "absent").is_err());
    }

    #[test]
    fn string_escaping() {
        let j = Json::Str("a\"b\\c\nd".into());
        assert_eq!(j.to_string(), r#""a\"b\\c\nd""#);
    }
}
