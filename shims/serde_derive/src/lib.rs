//! Offline shim for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the shim `serde` crate's
//! `Json` data model. The parser walks the raw token stream directly (no
//! `syn`/`quote`, which are unavailable offline) and supports the shapes this
//! workspace uses: named structs, tuple structs, unit structs, and enums with
//! unit/tuple/struct variants. Generics and serde attributes are not
//! supported and fail loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_text(&toks, i).expect("serde shim: expected `struct` or `enum`");
    i += 1;
    let name = ident_text(&toks, i).expect("serde shim: expected type name");
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim: generic type `{name}` is not supported");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_field_count(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde shim: malformed enum `{name}`"),
        },
        other => panic!("serde shim: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

fn ident_text(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Split a field/variant list on commas outside `<...>` (parens and brackets
/// are whole `Group` tokens, so only angle brackets need depth tracking).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            ident_text(&chunk, i).expect("serde shim: expected field name")
        })
        .collect()
}

fn tuple_field_count(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = ident_text(&chunk, i).expect("serde shim: expected variant name");
            i += 1;
            let kind = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(tuple_field_count(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(named_fields(g.stream()))
                }
                None => VariantKind::Unit,
                _ => panic!("serde shim: unsupported variant form `{name}`"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ------------------------------------------------------------- generation

fn obj_entries(fields: &[String], access: impl Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_json({})),",
                access(f)
            )
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => format!(
            "::serde::Json::Obj(::std::vec![{}])",
            obj_entries(fields, |f| format!("&self.{f}"))
        ),
        Shape::TupleStruct(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i}),"))
                .collect();
            format!("::serde::Json::Arr(::std::vec![{items}])")
        }
        Shape::UnitStruct => "::serde::Json::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Json::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::variant(\"{vn}\", ::serde::Serialize::to_json(__f0)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::variant(\"{vn}\", ::serde::Json::Arr(::std::vec![{items}])),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => format!(
                            "{name}::{vn} {{ {} }} => ::serde::variant(\"{vn}\", ::serde::Json::Obj(::std::vec![{}])),",
                            fields.join(", "),
                            obj_entries(fields, |f| f.to_string())
                        ),
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn to_json(&self) -> ::serde::Json {{ {body} }} \
         }}"
    )
}

fn field_inits(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| format!("{f}: ::serde::field(__obj, \"{f}\")?,"))
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => format!(
            "let __obj = __j.as_obj().ok_or_else(|| ::serde::DeError::expected(\"{name}\", \"object\"))?; \
             ::std::result::Result::Ok({name} {{ {} }})",
            field_inits(fields)
        ),
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_json(__j)?))"
        ),
        Shape::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json(&__arr[{i}])?,"))
                .collect();
            format!(
                "let __arr = ::serde::tuple_payload(__j, {n}usize, \"{name}\")?; \
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Shape::UnitStruct => format!(
            "if __j.is_null() {{ ::std::result::Result::Ok({name}) }} \
             else {{ ::std::result::Result::Err(::serde::DeError::expected(\"{name}\", \"null\")) }}"
        ),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_json(__payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_json(&__arr[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ \
                                     let __arr = ::serde::tuple_payload(__payload, {n}usize, \"{name}::{vn}\")?; \
                                     ::std::result::Result::Ok({name}::{vn}({inits})) \
                                 }}"
                            ))
                        }
                        VariantKind::Struct(fields) => Some(format!(
                            "\"{vn}\" => {{ \
                                 let __obj = __payload.as_obj().ok_or_else(|| ::serde::DeError::expected(\"{name}::{vn}\", \"object\"))?; \
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }}) \
                             }}",
                            field_inits(fields)
                        )),
                    }
                })
                .collect();
            let unit_arm = if unit_arms.is_empty() {
                format!(
                    "::serde::EnumRepr::Unit(__other) => \
                         ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)),"
                )
            } else {
                format!(
                    "::serde::EnumRepr::Unit(__v) => match __v {{ \
                         {unit_arms} \
                         __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)), \
                     }},"
                )
            };
            let data_arm = if data_arms.is_empty() {
                format!(
                    "::serde::EnumRepr::Data(__other, _) => \
                         ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)),"
                )
            } else {
                format!(
                    "::serde::EnumRepr::Data(__v, __payload) => match __v {{ \
                         {data_arms} \
                         __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)), \
                     }},"
                )
            };
            format!(
                "match ::serde::enum_repr(__j) {{ \
                     {unit_arm} \
                     {data_arm} \
                     ::serde::EnumRepr::Invalid => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"{name}\", \"string or single-key object\")), \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
             fn from_json(__j: &::serde::Json) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}
