//! Offline shim for `serde_json`.
//!
//! Text layer over the shim `serde` crate's [`Json`] tree: a recursive-descent
//! parser (`from_str`), compact and pretty printers (`to_string`,
//! `to_string_pretty`), and a `json!` macro for object literals. Error
//! messages carry line/column so corrupt input reports something useful.

use std::fmt;

pub use serde::Json as Value;

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

/// Two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_pretty_string())
}

/// Convert any serializable value into a [`Value`] tree (used by `json!`).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Parse JSON text and deserialize into `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let json = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_json(&json).map_err(|e| Error(e.to_string()))
}

/// Build a [`Value`] from an object literal of serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Obj(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Arr(::std::vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + consumed
            .iter()
            .rev()
            .take_while(|&&b| b != b'\n')
            .count();
        Error(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with the low half.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Integers that overflow i64 fall back to f64, like serde_json's
            // arbitrary-precision-off behavior.
            text.parse::<i64>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a":[1,2.5,"x\n",true,null],"b":{"nested":-7}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn corrupt_input_errors_with_position() {
        let err = from_str::<Value>("{not json").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{\"a\":1} extra").is_err());
    }

    #[test]
    fn pretty_output_reparses() {
        let v = Value::Obj(vec![
            ("k".into(), Value::Arr(vec![Value::Int(1), Value::Int(2)])),
            ("s".into(), Value::Str("hi".into())),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\""));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_builds_objects() {
        let id = "e0".to_string();
        let rows = vec![vec!["1".to_string()]];
        let j = json!({ "id": id, "rows": rows });
        assert_eq!(j.to_string(), r#"{"id":"e0","rows":[["1"]]}"#);
    }
}
