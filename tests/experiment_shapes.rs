//! Deterministic assertions of the paper's qualitative claims — compact
//! versions of the experiments in `crates/bench`, pinned as tests so the
//! "shape" of each result (who wins, which direction) cannot silently
//! regress. The experiment ids match DESIGN.md §3.

use std::sync::Arc;

use eii::matview::{CorrelationIndex, MatViewManager, RefreshPolicy};
use eii::prelude::*;
use eii::row;
use eii::semantics::ontology::enterprise_ontology;
use eii::semantics::{
    measure_agility, AdminLedger, HubRegistry, MappingRegistry, PairwiseRegistry,
    SchemaChange, SourceSchema,
};
use eii::warehouse::{EtlJob, RefreshMode, Warehouse};

fn customers_and_orders(n_customers: i64, orders_per: i64) -> (EiiSystem, SimClock) {
    let clock = SimClock::new();
    let crm = Database::new("crm", clock.clone());
    let t = crm
        .create_table(
            TableDef::new(
                "customers",
                Arc::new(Schema::new(vec![
                    Field::new("customer_id", DataType::Int).not_null(),
                    Field::new("customer_name", DataType::Str),
                    Field::new("customer_region", DataType::Str),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    for i in 0..n_customers {
        t.write()
            .insert(row![i, format!("customer number {i}"), format!("region{}", i % 8)])
            .unwrap();
    }
    let sales = Database::new("sales", clock.clone());
    let ot = sales
        .create_table(
            TableDef::new(
                "orders",
                Arc::new(Schema::new(vec![
                    Field::new("order_id", DataType::Int).not_null(),
                    Field::new("customer_id", DataType::Int),
                    Field::new("order_total", DataType::Float),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    for i in 0..(n_customers * orders_per) {
        ot.write()
            .insert(row![i, i % n_customers, (i % 97) as f64])
            .unwrap();
    }
    let sys = EiiSystem::new(clock.clone());
    sys.add_source(
        Arc::new(RelationalConnector::new(crm)),
        LinkProfile::wan(),
        WireFormat::Native,
    )
    .unwrap();
    sys.add_source(
        Arc::new(RelationalConnector::new(sales)),
        LinkProfile::wan(),
        WireFormat::Native,
    )
    .unwrap();
    (sys, clock)
}

/// E3 — pushdown ablation: each optimization step strictly reduces bytes
/// shipped for a selective cross-source join; naive XML shipping is worst.
#[test]
fn e3_pushdown_ladder_reduces_bytes() {
    let sql = "SELECT c.customer_name, o.order_total \
               FROM crm.customers c JOIN sales.orders o ON c.customer_id = o.customer_id \
               WHERE c.customer_region = 'region3' AND o.order_total > 90";

    let measure = |config: PlannerConfig, xml: bool| {
        let (sys, _) = customers_and_orders(64, 8);
        if xml {
            sys.federation().set_wire_format("crm", WireFormat::Xml).unwrap();
            sys.federation().set_wire_format("sales", WireFormat::Xml).unwrap();
        }
        let sys = sys.with_config(config);
        sys.federation().ledger().reset();
        let out = sys.execute(sql).unwrap();
        let rows = out.rows().unwrap().num_rows();
        (sys.federation().ledger().total().bytes, rows)
    };

    let (naive_xml, r0) = measure(PlannerConfig::naive(), true);
    let (naive, r1) = measure(PlannerConfig::naive(), false);
    let (filters, r2) = measure(PlannerConfig::filters_only(), false);
    let (optimized, r3) = measure(PlannerConfig::optimized(), false);
    assert_eq!(r0, r1);
    assert_eq!(r1, r2);
    assert_eq!(r2, r3);
    assert!(
        naive_xml > naive && naive > filters && filters > optimized,
        "ladder: xml={naive_xml} native={naive} filters={filters} optimized={optimized}"
    );
    // Bitton's "about 3 times" XML inflation.
    let inflation = naive_xml as f64 / naive as f64;
    assert!(
        (2.0..=4.5).contains(&inflation),
        "xml inflation {inflation}"
    );
}

/// E5 — materialized views: live fetches cost more per fetch but are never
/// stale; periodic fetches are cheap but stale.
#[test]
fn e5_freshness_is_bought_with_cost() {
    let (sys, clock) = customers_and_orders(64, 4);
    let views = MatViewManager::new(sys.federation().clone(), clock.clone());
    let sql = "SELECT customer_region, COUNT(*) AS n FROM crm.customers GROUP BY customer_region";
    views
        .define("live", sql, sys.catalog(), RefreshPolicy::Live)
        .unwrap();
    views
        .define(
            "cached",
            sql,
            sys.catalog(),
            RefreshPolicy::Periodic { interval_ms: 100_000 },
        )
        .unwrap();
    let mut live_cost = 0.0;
    let mut cached_cost = 0.0;
    let mut max_staleness = 0;
    for _ in 0..10 {
        clock.advance_ms(5_000);
        let (_, o) = views.fetch("live").unwrap();
        live_cost += o.sim_ms;
        assert_eq!(o.staleness_ms, 0);
        let (_, o) = views.fetch("cached").unwrap();
        cached_cost += o.sim_ms;
        max_staleness = max_staleness.max(o.staleness_ms);
    }
    assert!(live_cost > 5.0 * cached_cost, "live={live_cost} cached={cached_cost}");
    assert!(max_staleness > 0);
}

/// E6 — record correlation: where exact joins find nothing, the index
/// recovers the true matches.
#[test]
fn e6_correlation_beats_exact_join() {
    let left_schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("name", DataType::Str),
    ]));
    let right_schema = Arc::new(Schema::new(vec![
        Field::new("ref", DataType::Int),
        Field::new("company", DataType::Str),
    ]));
    let companies = [
        "Acme Corporation",
        "Globex Incorporated",
        "Initech LLC",
        "Umbrella Co",
        "Stark Industries",
    ];
    let dirty = [
        "ACME corp",
        "globex inc.",
        "Initech",
        "Umbrella Company",
        "Starkk Industries", // typo
    ];
    let left = Batch::new(
        left_schema,
        companies
            .iter()
            .enumerate()
            .map(|(i, c)| row![i as i64, *c])
            .collect(),
    );
    let right = Batch::new(
        right_schema,
        dirty
            .iter()
            .enumerate()
            .map(|(i, c)| row![100 + i as i64, *c])
            .collect(),
    );
    // Exact join: zero matches.
    let exact = left
        .rows()
        .iter()
        .flat_map(|l| right.rows().iter().filter(move |r| l.get(1) == r.get(1)))
        .count();
    assert_eq!(exact, 0);
    // Correlation: recovers all five true pairs, no false ones
    // (ground truth is positional).
    let ix = CorrelationIndex::build(&left, "id", "name", &right, "ref", "company", 0.5).unwrap();
    let mut correct = 0;
    let mut wrong = 0;
    for c in ix.pairs() {
        let l = c.left_key.as_int().unwrap();
        let r = c.right_key.as_int().unwrap() - 100;
        if l == r {
            correct += 1;
        } else {
            wrong += 1;
        }
    }
    assert!(correct >= 4, "recall too low: {correct}/5");
    assert_eq!(wrong, 0, "no false correlations at this threshold");
}

/// E7 — mapping topologies: pairwise mappings grow quadratically and repair
/// cost grows with partner count; the hub stays linear/constant.
#[test]
fn e7_hub_topology_is_more_agile() {
    let schemas: Vec<SourceSchema> = (0..10)
        .map(|i| {
            SourceSchema::new(
                format!("sys{i}"),
                vec![
                    ("cust_id", DataType::Int),
                    ("cust_nm", DataType::Str),
                    ("region", DataType::Str),
                ],
            )
        })
        .collect();
    let mut pairwise = PairwiseRegistry::new(AdminLedger::new());
    let mut hub = HubRegistry::new(enterprise_ontology(), AdminLedger::new());
    for s in &schemas {
        pairwise.register(s.clone()).unwrap();
        hub.register(s.clone()).unwrap();
    }
    assert!(pairwise.mapping_count() > 3 * hub.mapping_count());

    let script = vec![(
        "sys0".to_string(),
        SchemaChange::RenameColumn {
            from: "cust_nm".into(),
            to: "customer_name".into(),
        },
    )];
    let pw = measure_agility(&mut pairwise, &script).unwrap();
    let hb = measure_agility(&mut hub, &script).unwrap();
    assert_eq!(pw.mappings_touched, 9, "one repair per partner");
    assert_eq!(hb.mappings_touched, 1, "one repair at the hub");
}

/// E1 — the crossover: at low query rates the warehouse's standing refresh
/// cost dominates (EII cheaper); at high query rates per-query live costs
/// dominate (warehouse cheaper).
#[test]
fn e1_eii_vs_warehouse_crossover() {
    let sql = "SELECT customer_region, COUNT(*) AS n FROM crm.customers GROUP BY customer_region";
    let total_cost = |queries: usize| -> (f64, f64) {
        // EII: pay per live query.
        let (sys, clock) = customers_and_orders(128, 2);
        let mut eii_cost = 0.0;
        for _ in 0..queries {
            let out = sys.execute(sql).unwrap();
            eii_cost += out.query_result().unwrap().cost.sim_ms;
        }
        // Warehouse: pay hourly refreshes for a day, queries are local.
        let mut wh = Warehouse::new("wh", sys.federation().clone(), clock.clone());
        wh.add_job(EtlJob::copy("c", "crm.customers", "customers").with_key("customer_id"))
            .unwrap();
        let mut wh_cost = 0.0;
        for _ in 0..24 {
            wh_cost += wh.refresh("c", RefreshMode::Full).unwrap();
        }
        let wh_sys = EiiSystem::new(clock);
        wh_sys
            .add_source(
                Arc::new(RelationalConnector::new(wh.database().clone())),
                LinkProfile::local(),
                WireFormat::Native,
            )
            .unwrap();
        let local_sql =
            "SELECT customer_region, COUNT(*) AS n FROM wh.customers GROUP BY customer_region";
        for _ in 0..queries {
            let out = wh_sys.execute(local_sql).unwrap();
            wh_cost += out.query_result().unwrap().cost.sim_ms;
        }
        (eii_cost, wh_cost)
    };
    let (eii_low, wh_low) = total_cost(3);
    let (eii_high, wh_high) = total_cost(600);
    assert!(
        eii_low < wh_low,
        "few queries: EII should win ({eii_low} vs {wh_low})"
    );
    assert!(
        eii_high > wh_high,
        "many queries: warehouse should win ({eii_high} vs {wh_high})"
    );
}

/// E11 — dialect modeling: the fine-grained dialect ships fewer bytes than
/// a lowest-common-denominator wrapper on the same engine.
#[test]
fn e11_fine_dialect_pushes_more() {
    let sql = "SELECT customer_name FROM crm.customers \
               WHERE customer_region LIKE 'region1%' AND customer_id > 10";
    let run_with = |override_dialect: bool| {
        let (sys, _) = customers_and_orders(128, 1);
        let mut cfg = PlannerConfig::optimized();
        if override_dialect {
            cfg.dialect_override = Some(eii::federation::Dialect::lowest_common_denominator());
        }
        let sys = sys.with_config(cfg);
        sys.federation().ledger().reset();
        let out = sys.execute(sql).unwrap();
        (sys.federation().ledger().total().bytes, out.rows().unwrap().num_rows())
    };
    let (fine_bytes, n1) = run_with(false);
    let (lcd_bytes, n2) = run_with(true);
    assert_eq!(n1, n2, "same answer either way");
    assert!(
        fine_bytes < lcd_bytes,
        "fine={fine_bytes} lcd={lcd_bytes}"
    );
}
