//! Cross-crate integration tests: the full platform assembled the way the
//! examples assemble it — federated queries, warehouse refresh consistency,
//! sagas mutating sources that queries then observe, search with ACLs, and
//! record correlation feeding a federated join.

use std::collections::HashMap;
use std::sync::Arc;

use eii::eai::{ProcessDef, SagaOutcome, Step};
use eii::federation::{SourceQuery, UpdateOp};
use eii::matview::CorrelationIndex;
use eii::prelude::*;
use eii::row;
use eii::search::{index_docstore, index_federation_table, EnterpriseSearch, SearchIndex};
use eii::warehouse::{EtlJob, RefreshMode, Transform, Warehouse};

/// Build the reference enterprise: crm + sales + support docs.
fn build_system() -> (EiiSystem, SimClock) {
    let clock = SimClock::new();

    let crm = Database::new("crm", clock.clone());
    let t = crm
        .create_table(
            TableDef::new(
                "customers",
                Arc::new(Schema::new(vec![
                    Field::new("id", DataType::Int).not_null(),
                    Field::new("name", DataType::Str),
                    Field::new("region", DataType::Str),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    {
        let mut t = t.write();
        for (i, (n, r)) in [
            ("Acme Corp", "west"),
            ("Globex", "east"),
            ("Initech", "west"),
            ("Umbrella", "north"),
        ]
        .iter()
        .enumerate()
        {
            t.insert(row![i as i64 + 1, *n, *r]).unwrap();
        }
    }

    let sales = Database::new("sales", clock.clone());
    let ot = sales
        .create_table(
            TableDef::new(
                "orders",
                Arc::new(Schema::new(vec![
                    Field::new("order_id", DataType::Int).not_null(),
                    Field::new("customer_id", DataType::Int),
                    Field::new("total", DataType::Float),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    {
        let mut t = ot.write();
        for i in 0..40i64 {
            t.insert(row![i, i % 4 + 1, (i as f64 + 1.0) * 5.0]).unwrap();
        }
    }

    let docs = DocStore::new();
    docs.insert(Document::from_text(
        "Acme contract",
        "Acme Corp gold support renewal 2005",
    ));
    docs.insert(Document::from_text(
        "Globex note",
        "Globex churned to a competitor",
    ));
    let support = DocumentConnector::new("docs", docs.clone());

    let sys = EiiSystem::new(clock.clone());
    sys.add_source(
        Arc::new(RelationalConnector::new(crm)),
        LinkProfile::lan(),
        WireFormat::Native,
    )
    .unwrap();
    sys.add_source(
        Arc::new(RelationalConnector::new(sales)),
        LinkProfile::wan(),
        WireFormat::Native,
    )
    .unwrap();
    sys.add_source(Arc::new(support), LinkProfile::lan(), WireFormat::Native)
        .unwrap();

    // Attach search over crm + docs.
    let mut index = SearchIndex::new();
    index_federation_table(&mut index, sys.federation(), "crm.customers").unwrap();
    index_docstore(&mut index, "docs", &docs).unwrap();
    sys.catalog().grant("docs", "legal");
    sys.attach_search_service(EnterpriseSearch::new(index, sys.catalog().clone()));

    (sys, clock)
}

#[test]
fn federated_view_and_aggregate() {
    let (sys, _) = build_system();
    sys.execute(
        "CREATE VIEW revenue AS \
         SELECT c.region, o.total FROM crm.customers c \
         JOIN sales.orders o ON c.id = o.customer_id",
    )
    .unwrap();
    let out = sys
        .execute("SELECT region, SUM(total) AS rev FROM revenue GROUP BY region ORDER BY rev DESC")
        .unwrap();
    let batch = out.rows().unwrap().clone();
    assert_eq!(batch.num_rows(), 3);
    // All 40 orders accounted for.
    let out = sys
        .execute("SELECT SUM(total) AS t FROM revenue")
        .unwrap();
    assert_eq!(
        out.rows().unwrap().rows()[0].get(0),
        &Value::Float((1..=40).map(|i| i as f64 * 5.0).sum())
    );
}

#[test]
fn warehouse_agrees_with_live_query_after_refresh() {
    let (sys, clock) = build_system();
    // Warehouse copy of the customers table, cleansed.
    let mut wh = Warehouse::new("wh", sys.federation().clone(), clock.clone());
    wh.add_job(
        EtlJob::copy("dim_customers", "crm.customers", "dim_customers")
            .with_key("id")
            .with_transform(Transform::Normalize("name".into())),
    )
    .unwrap();
    wh.refresh_all(RefreshMode::Full).unwrap();

    // Mutate the source through the wrapper (as EAI would).
    sys.federation()
        .source("crm")
        .unwrap()
        .update(&UpdateOp::Insert {
            table: "customers".into(),
            row: row![99i64, "Newco", "south"],
        })
        .unwrap();

    // Live EII sees the change immediately; the warehouse does after an
    // incremental refresh.
    let live = sys
        .execute("SELECT COUNT(*) AS n FROM crm.customers")
        .unwrap();
    assert_eq!(live.rows().unwrap().rows()[0].get(0), &Value::Int(5));
    let stale = wh.database().table("dim_customers").unwrap().read().row_count();
    assert_eq!(stale, 4, "warehouse serves stale data until refresh");
    wh.refresh("dim_customers", RefreshMode::Incremental).unwrap();
    let fresh = wh.database().table("dim_customers").unwrap().read().row_count();
    assert_eq!(fresh, 5);

    // Register the warehouse itself as a source and query it with SQL:
    // virtualize or persist, same engine either way.
    let sys2 = EiiSystem::new(clock);
    sys2.add_source(
        Arc::new(RelationalConnector::new(wh.database().clone())),
        LinkProfile::local(),
        WireFormat::Native,
    )
    .unwrap();
    let out = sys2
        .execute("SELECT name FROM wh.dim_customers WHERE id = 99")
        .unwrap();
    assert_eq!(out.rows().unwrap().rows()[0].get(0), &Value::str("newco"));
}

#[test]
fn saga_effects_are_visible_to_queries_and_compensation_undoes_them() {
    let (sys, _) = build_system();
    let onboard = |fail: bool| {
        ProcessDef::new("add_customer")
            .step(
                Step::new("insert", move |env| {
                    env.federation.source("crm")?.update(&UpdateOp::Insert {
                        table: "customers".into(),
                        row: row![50i64, "Hooli", "west"],
                    })?;
                    Ok(())
                })
                .with_compensation(|env| {
                    env.federation.source("crm")?.update(&UpdateOp::DeleteByKey {
                        table: "customers".into(),
                        key: Value::Int(50),
                    })?;
                    Ok(())
                }),
            )
            .step(Step::new("verify", move |_| {
                if fail {
                    Err(EiiError::Process("fraud check failed".into()))
                } else {
                    Ok(())
                }
            }))
    };

    // Failing run: insert is compensated away.
    let (outcome, _) = sys.run_process(&onboard(true), HashMap::new()).unwrap();
    assert!(matches!(outcome, SagaOutcome::Compensated { .. }));
    let n = sys
        .execute("SELECT COUNT(*) AS n FROM crm.customers WHERE id = 50")
        .unwrap();
    assert_eq!(n.rows().unwrap().rows()[0].get(0), &Value::Int(0));

    // Successful run: the row is there for the very next federated query.
    let (outcome, _) = sys.run_process(&onboard(false), HashMap::new()).unwrap();
    assert_eq!(outcome, SagaOutcome::Completed);
    let out = sys
        .execute("SELECT name FROM crm.customers WHERE id = 50")
        .unwrap();
    assert_eq!(out.rows().unwrap().rows()[0].get(0), &Value::str("Hooli"));
}

#[test]
fn search_statement_respects_roles_and_source_filter() {
    let (sys, _) = build_system();
    // docs is restricted to 'legal'; crm rows are open.
    match sys.execute_as("SEARCH 'acme'", "intern").unwrap() {
        eii::ExecOutcome::SearchHits(hits) => {
            assert!(!hits.is_empty());
            assert!(hits.iter().all(|h| h.source != "docs"));
        }
        other => panic!("unexpected {other:?}"),
    }
    match sys.execute_as("SEARCH 'acme' IN docs", "legal").unwrap() {
        eii::ExecOutcome::SearchHits(hits) => {
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].source, "docs");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn correlation_index_joins_sources_without_keys() {
    let (sys, _) = build_system();
    // A partner list whose names are dirty variants of CRM names.
    let partner_schema = Arc::new(Schema::new(vec![
        Field::new("pid", DataType::Int),
        Field::new("company", DataType::Str),
        Field::new("tier", DataType::Str),
    ]));
    let partners = Batch::new(
        partner_schema,
        vec![
            row![700i64, "ACME corp.", "gold"],
            row![701i64, "initech llc", "silver"],
            row![702i64, "Wayne Enterprises", "bronze"],
        ],
    );
    let (handle, table) = sys.federation().resolve("crm.customers").unwrap();
    let (customers, _) = handle.query(&SourceQuery::full_table(table)).unwrap();

    let ix = CorrelationIndex::build(
        &customers, "id", "name", &partners, "pid", "company", 0.5,
    )
    .unwrap();
    let joined = ix.join(&customers, "id", &partners, "pid").unwrap();
    assert_eq!(joined.num_rows(), 2, "Acme and Initech correlate");
    assert!(ix.lookup(&Value::Int(4)).is_empty(), "Umbrella has no partner");
}

#[test]
fn explain_and_predict_are_consistent_with_execution() {
    let (sys, _) = build_system();
    let sql = "SELECT c.name, o.total FROM crm.customers c \
               JOIN sales.orders o ON c.id = o.customer_id WHERE c.region = 'west'";
    let explain = sys.explain(sql).unwrap();
    assert!(explain.contains("SourceQuery crm"));
    assert!(explain.contains("SourceQuery sales") || explain.contains("BindJoin"));
    let predicted = sys.predict(sql).unwrap();
    let actual = sys.execute(sql).unwrap();
    let actual = actual.query_result().unwrap();
    assert!(predicted.sim_ms > 0.0);
    assert!(actual.cost.sim_ms > 0.0);
    // Prediction within two orders of magnitude — the E12 experiment
    // quantifies this properly; here we just pin that both are sane.
    let ratio = predicted.sim_ms / actual.cost.sim_ms;
    assert!(
        (0.01..=100.0).contains(&ratio),
        "prediction {predicted:?} vs actual {:?}",
        actual.cost
    );
}

#[test]
fn data_service_agreement_detects_stale_warehouse_delivery() {
    use eii::semantics::{DataAgreement, DeliveryObservation, Obligation};
    let (sys, clock) = build_system();
    let mut wh = Warehouse::new("wh", sys.federation().clone(), clock.clone());
    wh.add_job(EtlJob::copy("c", "crm.customers", "customers").with_key("id"))
        .unwrap();
    wh.refresh("c", RefreshMode::Full).unwrap();

    let agreement = DataAgreement::new("crm", "analytics", "crm.customers")
        .obligation(Obligation::MaxStalenessMs(60_000))
        .obligation(Obligation::MinRowsPerDelivery(1));

    // Fresh delivery: compliant.
    let rows = {
        let handle = wh.database().table("customers").unwrap();
        let t = handle.read();
        Batch::new(t.schema().clone(), t.all_rows())
    };
    let obs = DeliveryObservation::from_batch(
        &rows,
        wh.staleness_ms("c").unwrap(),
        "reporting",
    );
    assert!(agreement.check(&obs).is_empty());

    // Ten minutes later without a refresh: the staleness obligation trips.
    clock.advance_ms(600_000);
    let obs = DeliveryObservation::from_batch(
        &rows,
        wh.staleness_ms("c").unwrap(),
        "reporting",
    );
    let violations = agreement.check(&obs);
    assert_eq!(violations.len(), 1);
    assert!(violations[0].obligation.contains("staleness"));

    // A refresh restores compliance.
    wh.refresh("c", RefreshMode::Incremental).unwrap();
    let obs = DeliveryObservation::from_batch(
        &rows,
        wh.staleness_ms("c").unwrap(),
        "reporting",
    );
    assert!(agreement.check(&obs).is_empty());
}

#[test]
fn catalog_export_reimports_into_working_system() {
    let (sys, clock) = build_system();
    sys.execute(
        "CREATE VIEW west AS SELECT id, name FROM crm.customers WHERE region = 'west'",
    )
    .unwrap();
    let json = eii::catalog::CatalogExport::from_catalog(sys.catalog())
        .to_json()
        .unwrap();
    let restored = eii::catalog::CatalogExport::from_json(&json)
        .unwrap()
        .into_catalog()
        .unwrap();
    // Rebuild a system with the restored catalog by re-creating the view.
    let sys2 = EiiSystem::new(clock);
    let crm = Database::new("crm", sys2.clock().clone());
    let t = crm
        .create_table(
            TableDef::new(
                "customers",
                Arc::new(Schema::new(vec![
                    Field::new("id", DataType::Int).not_null(),
                    Field::new("name", DataType::Str),
                    Field::new("region", DataType::Str),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    t.write().insert(row![1i64, "Acme Corp", "west"]).unwrap();
    sys2.add_source(
        Arc::new(RelationalConnector::new(crm)),
        LinkProfile::lan(),
        WireFormat::Native,
    )
    .unwrap();
    let view = restored.view("west").unwrap();
    sys2.execute(&view.sql).unwrap();
    let out = sys2.execute("SELECT name FROM west").unwrap();
    assert_eq!(out.rows().unwrap().num_rows(), 1);
}

#[test]
fn facade_degrades_to_stale_snapshots_when_a_source_dies() {
    let (sys, clock) = build_system();
    let sql = "SELECT c.name, o.total FROM crm.customers c \
               JOIN sales.orders o ON c.id = o.customer_id \
               WHERE o.total > 150";
    let live = sys.execute(sql).unwrap();
    let live_rows = live.rows().unwrap().rows().to_vec();
    assert!(live.query_result().unwrap().fully_live());

    // Snapshot sales before the outage, then kill the source outright.
    sys.snapshot_fallback("sales.orders").unwrap();
    clock.advance_ms(2_000);
    sys.federation()
        .inject_faults("sales", FaultProfile::failing(1.0, 7))
        .unwrap();

    // Strict policy: the query fails.
    assert!(sys.execute(sql).is_err());

    // Fallback policy: same answer, flagged stale.
    sys.set_degradation_policy(DegradationPolicy::Fallback);
    let out = sys.execute(sql).unwrap();
    let result = out.query_result().unwrap();
    assert_eq!(result.batch.rows(), live_rows.as_slice());
    assert!(!result.fully_live());
    assert_eq!(result.degraded[0].stale_ms, Some(2_000));
}

#[test]
fn explain_analyze_annotates_federated_join_with_estimates_and_actuals() {
    let (sys, _) = build_system();
    // Pin the join strategy so the plan shape under test is deterministic.
    let sys = sys.with_config(PlannerConfig {
        use_bind_joins: false,
        ..PlannerConfig::optimized()
    });
    let out = sys
        .execute(
            "EXPLAIN ANALYZE SELECT c.name, o.total FROM crm.customers c \
             JOIN sales.orders o ON c.id = o.customer_id WHERE o.total > 150",
        )
        .unwrap();
    let text = out.explained().unwrap();
    // Every operator line carries estimated and actual rows/bytes/sim-time.
    for line in text.lines().filter(|l| !l.starts_with("Total:")) {
        assert!(line.contains("est rows="), "missing estimate: {line}");
        assert!(line.contains("| act rows="), "missing actuals: {line}");
        assert!(line.contains("sim="), "missing sim time: {line}");
    }
    // The join and both source scans are visible, with pushdown status.
    assert!(text.contains("HashJoin"), "{text}");
    assert!(text.contains("SourceQuery crm"), "{text}");
    assert!(text.contains("SourceQuery sales"), "{text}");
    assert!(text.contains("pushed=["), "{text}");
    assert!(text.contains("Total: rows="), "{text}");
    // The direct entry point renders the same thing.
    let direct = sys
        .explain_analyze(
            "SELECT c.name, o.total FROM crm.customers c \
             JOIN sales.orders o ON c.id = o.customer_id WHERE o.total > 150",
        )
        .unwrap();
    assert!(direct.contains("| act rows="));
}

#[test]
fn explain_analyze_flags_degraded_sources() {
    let (sys, clock) = build_system();
    let sql = "SELECT c.name, o.total FROM crm.customers c \
               JOIN sales.orders o ON c.id = o.customer_id WHERE o.total > 150";
    sys.snapshot_fallback("sales.orders").unwrap();
    clock.advance_ms(1_500);
    sys.federation()
        .inject_faults("sales", FaultProfile::failing(1.0, 7))
        .unwrap();
    sys.set_degradation_policy(DegradationPolicy::Fallback);
    let text = sys.explain_analyze(sql).unwrap();
    assert!(text.contains("[DEGRADED: orders stale 1500ms]"), "{text}");
    assert!(text.contains("degraded_sources=1"), "{text}");
}

#[test]
fn source_health_reports_traffic_retries_and_breaker_under_faults() {
    let (sys, _clock) = build_system();
    sys.federation()
        .inject_faults("crm", FaultProfile::none().with_outage(0, 40))
        .unwrap();
    sys.federation()
        .harden(
            "crm",
            RetryPolicy::standard().with_attempts(6),
            CircuitBreakerConfig::default(),
        )
        .unwrap();
    sys.execute("SELECT name FROM crm.customers WHERE region = 'west'")
        .unwrap();
    let health = sys.source_health();
    assert_eq!(health.len(), 3, "{health:?}");
    let crm = health.iter().find(|h| h.source == "crm").unwrap();
    assert!(crm.available());
    assert!(crm.traffic.requests >= 1);
    assert!(crm.traffic.bytes > 0);
    assert!(crm.traffic.retries >= 1, "{crm:?}");
    let breaker = crm.breaker.as_ref().expect("crm is hardened");
    assert_eq!(breaker.state, eii::federation::BreakerState::Closed);
    // Un-hardened sources report traffic but no breaker.
    let sales = health.iter().find(|h| h.source == "sales").unwrap();
    assert!(sales.breaker.is_none());
    // The same retries surface as metrics.
    let snap = sys.metrics().snapshot();
    assert!(snap.counter("source.crm.retries") >= 1);
    assert!(snap.counter("source.crm.requests") >= 1);
    assert_eq!(snap.counter("exec.queries"), 1);
}

#[test]
#[allow(deprecated)] // deliberately exercises the last_trace() shim
fn query_trace_covers_phases_and_operators() {
    let (sys, _) = build_system();
    let sys = sys.with_config(PlannerConfig {
        use_bind_joins: false,
        ..PlannerConfig::optimized()
    });
    sys.execute(
        "SELECT c.name, o.total FROM crm.customers c \
         JOIN sales.orders o ON c.id = o.customer_id",
    )
    .unwrap();
    let trace = sys.last_trace().expect("trace retained");
    for phase in ["statement", "parse", "plan", "execute"] {
        assert!(trace.find(phase).is_some(), "missing {phase} span:\n{}", trace.render());
    }
    let join = trace.find("op:HashJoin").expect("operator span");
    assert!(join
        .annotations
        .iter()
        .any(|(k, v)| k == "rows" && v.parse::<usize>().unwrap() > 0));
    assert_eq!(join.children.len(), 2, "join has both inputs:\n{}", trace.render());
    // Executing another statement replaces the trace.
    sys.execute("SELECT name FROM crm.customers").unwrap();
    let trace2 = sys.last_trace().unwrap();
    assert!(trace2.find("op:HashJoin").is_none());
}

#[test]
fn facade_retries_ride_out_a_transient_outage() {
    let (sys, _clock) = build_system();
    let sql = "SELECT name FROM crm.customers WHERE region = 'west'";
    sys.federation()
        .inject_faults("crm", FaultProfile::none().with_outage(0, 40))
        .unwrap();
    sys.federation()
        .harden(
            "crm",
            RetryPolicy::standard().with_attempts(6),
            CircuitBreakerConfig::default(),
        )
        .unwrap();
    let out = sys.execute(sql).unwrap();
    assert_eq!(out.rows().unwrap().num_rows(), 2);
    assert!(sys.federation().ledger().traffic("crm").retries >= 1);
}

#[test]
fn query_log_fingerprints_collapse_equivalent_statements() {
    let (sys, _) = build_system();
    let sql = "SELECT name FROM crm.customers WHERE region = 'west'";
    sys.execute(sql).unwrap();
    sys.execute(sql).unwrap();
    sys.execute("SELECT order_id FROM sales.orders WHERE total > 150")
        .unwrap();

    let log = sys.query_log();
    assert_eq!(log.seen(), 3);
    let digest = log.fingerprints();
    assert_eq!(digest.len(), 2, "two distinct plans: {digest:?}");
    let last = log.last().expect("records retained");
    assert!(last.plan.contains("orders"), "normalized plan text: {}", last.plan);
    assert!(last.bytes_shipped > 0, "bytes attributed");
    assert!(
        last.per_source_bytes.iter().map(|(_, b)| b).sum::<u64>() > 0,
        "per-source attribution: {:?}",
        last.per_source_bytes
    );
    assert!(
        last.operators.iter().any(|o| o.actual_rows > 0),
        "est-vs-actual operator stats: {:?}",
        last.operators
    );
    let top = log.top_k(1, eii::obs::WorkloadKey::Count);
    assert_eq!(top[0].count, 2, "repeated statement dominates by count");
}

#[test]
fn trace_store_keeps_sessions_apart_and_exports_chrome_json() {
    let (sys, _) = build_system();
    let sys = Arc::new(sys);
    let alice = sys.session().with_label("alice");
    let bob = sys.session().with_label("bob");
    alice
        .execute("SELECT name FROM crm.customers WHERE region = 'west'")
        .unwrap();
    bob.execute("SELECT order_id FROM sales.orders WHERE total > 150")
        .unwrap();

    let a = alice.last_stored_trace().expect("alice's trace retained");
    let b = bob.last_stored_trace().expect("bob's trace retained");
    assert_ne!(a.trace_id, b.trace_id);
    assert_ne!(a.fingerprint, b.fingerprint, "different statements");
    assert!(a.trace.find("op:SourceScan").is_some() || a.trace.find("execute").is_some());

    let json = eii::obs::chrome_trace_json(&a);
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains("\"ph\""), "{json}");
    // The query-log record points back at the stored trace.
    let with_trace = sys
        .query_log()
        .records()
        .into_iter()
        .filter(|r| r.trace_id.is_some())
        .count();
    assert_eq!(with_trace, 2, "both statements link log record to trace");
}

#[test]
fn telemetry_toggle_stops_recording() {
    let (sys, _) = build_system();
    sys.set_telemetry_enabled(false);
    sys.execute("SELECT name FROM crm.customers").unwrap();
    assert_eq!(sys.query_log().seen(), 0);
    assert!(sys.trace_store().is_empty());
    sys.set_telemetry_enabled(true);
    sys.execute("SELECT name FROM crm.customers").unwrap();
    assert_eq!(sys.query_log().seen(), 1);
    assert_eq!(sys.trace_store().len(), 1);
}

#[test]
fn deadline_statements_record_budget_and_spend() {
    let (sys, _) = build_system();
    let opts = ExecOptions {
        deadline_budget_ms: Some(10_000),
        ..ExecOptions::default()
    };
    sys.execute_with("SELECT name FROM crm.customers", &opts).unwrap();
    let rec = sys.query_log().last().expect("deadline statements always kept");
    assert_eq!(rec.deadline_budget_ms, Some(10_000.0));
    let spent = rec.deadline_spent_ms.expect("spend recorded");
    assert!((0.0..10_000.0).contains(&spent), "spent={spent}");
}

#[test]
fn degraded_statements_tail_sample_and_flag_explain_analyze() {
    let (sys, clock) = build_system();
    let sql = "SELECT c.name, o.total FROM crm.customers c \
               JOIN sales.orders o ON c.id = o.customer_id WHERE o.total > 150";
    sys.snapshot_fallback("sales.orders").unwrap();
    clock.advance_ms(1_000);
    sys.federation()
        .inject_faults("sales", FaultProfile::failing(1.0, 7))
        .unwrap();
    sys.set_degradation_policy(DegradationPolicy::Fallback);

    let text = sys.explain_analyze(sql).unwrap();
    assert!(text.contains("flags=degraded"), "header flags: {text}");

    sys.execute(sql).unwrap();
    let rec = sys.query_log().last().unwrap();
    assert!(rec.flags.degraded, "degraded flag on the log record");
    let stored = sys.trace_store().latest().expect("degraded trace tail-sampled");
    assert!(stored.flags.degraded);
}

#[test]
fn slo_burn_rates_read_out_per_priority() {
    let (sys, _) = build_system();
    sys.set_slo_objective(eii::obs::SloObjective::new("normal", 50.0));
    for _ in 0..5 {
        sys.execute("SELECT name FROM crm.customers").unwrap();
    }
    let statuses = sys.slo_status();
    assert_eq!(statuses.len(), 1);
    assert_eq!(statuses[0].priority, "normal");
    assert_eq!(statuses[0].total, 5);
    assert_eq!(statuses[0].state(), eii::obs::SloState::Healthy);
    let snap = sys.metrics().snapshot();
    assert!(
        snap.histograms.contains_key("slo.normal.latency_burn"),
        "slo metrics published: {:?}",
        snap.histograms.keys().collect::<Vec<_>>()
    );
}
