//! Property-based tests over the whole engine: on randomized data and
//! predicates, the optimized federated plan must agree with the naive plan,
//! pushdown must never change results, the warehouse must converge to the
//! source, and SQL rendering must round-trip.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use eii::prelude::*;
use eii::row;
use eii::warehouse::{EtlJob, RefreshMode, Warehouse};

/// Build the crm/sales databases every property runs against.
fn customer_dbs(rows: &[(i64, String, i64)]) -> (Database, Database, SimClock) {
    let clock = SimClock::new();
    let crm = Database::new("crm", clock.clone());
    let t = crm
        .create_table(
            TableDef::new(
                "customers",
                Arc::new(Schema::new(vec![
                    Field::new("id", DataType::Int).not_null(),
                    Field::new("name", DataType::Str),
                    Field::new("score", DataType::Int),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    {
        let mut tt = t.write();
        for (id, name, score) in rows {
            tt.insert(row![*id, name.clone(), *score]).unwrap();
        }
    }
    let orders = Database::new("sales", clock.clone());
    let ot = orders
        .create_table(
            TableDef::new(
                "orders",
                Arc::new(Schema::new(vec![
                    Field::new("order_id", DataType::Int).not_null(),
                    Field::new("customer_id", DataType::Int),
                    Field::new("total", DataType::Float),
                ])),
            )
            .with_primary_key(0),
        )
        .unwrap();
    {
        let mut tt = ot.write();
        for (i, (id, _, score)) in rows.iter().enumerate() {
            tt.insert(row![i as i64, *id, (*score % 50) as f64]).unwrap();
        }
    }
    (crm, orders, clock)
}

/// Build a system whose crm.customers table holds the given rows.
fn system_with_customers(rows: &[(i64, String, i64)]) -> (EiiSystem, SimClock) {
    let (crm, orders, clock) = customer_dbs(rows);
    let sys = EiiSystem::new(clock.clone());
    sys.add_source(
        Arc::new(RelationalConnector::new(crm)),
        LinkProfile::lan(),
        WireFormat::Native,
    )
    .unwrap();
    sys.add_source(
        Arc::new(RelationalConnector::new(orders)),
        LinkProfile::wan(),
        WireFormat::Native,
    )
    .unwrap();
    (sys, clock)
}

/// A connector wrapper that trips a shared [`CancelToken`] after a fixed
/// number of connector calls across the whole federation — a deterministic
/// cancel point that the property sweep can place anywhere inside a plan
/// (mid bind-join, between partition scans, after the last fetch, ...).
struct CancelAfter {
    inner: RelationalConnector,
    token: CancelToken,
    remaining: Arc<AtomicI64>,
}

impl CancelAfter {
    fn tick(&self) {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.token.cancel("proptest cancel point reached");
        }
    }
}

impl Connector for CancelAfter {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn tables(&self) -> Vec<String> {
        self.inner.tables()
    }
    fn table_schema(&self, table: &str) -> eii::data::Result<eii::data::SchemaRef> {
        self.inner.table_schema(table)
    }
    fn capabilities(&self) -> eii::federation::SourceCapabilities {
        self.inner.capabilities()
    }
    fn dialect(&self) -> eii::federation::Dialect {
        self.inner.dialect()
    }
    fn statistics(&self, table: &str) -> eii::data::Result<eii::storage::TableStats> {
        self.inner.statistics(table)
    }
    fn execute(
        &self,
        query: &eii::federation::SourceQuery,
    ) -> eii::data::Result<eii::federation::SourceAnswer> {
        self.tick();
        self.inner.execute(query)
    }
    fn supports_partitioned_scans(&self) -> bool {
        self.inner.supports_partitioned_scans()
    }
    fn execute_partition(
        &self,
        query: &eii::federation::SourceQuery,
        part: usize,
        of: usize,
    ) -> eii::data::Result<eii::federation::SourceAnswer> {
        self.tick();
        self.inner.execute_partition(query, part, of)
    }
}

/// Same data as [`system_with_customers`], but both sources count connector
/// calls and trip the returned token once `cancel_after` calls have landed
/// (`0` = cancelled before any work).
fn cancellable_system(rows: &[(i64, String, i64)], cancel_after: i64) -> (Arc<EiiSystem>, CancelToken) {
    let (crm, orders, clock) = customer_dbs(rows);
    let token = CancelToken::new();
    if cancel_after == 0 {
        token.cancel("cancelled before execution");
    }
    let remaining = Arc::new(AtomicI64::new(cancel_after));
    let sys = EiiSystem::new(clock);
    sys.add_source(
        Arc::new(CancelAfter {
            inner: RelationalConnector::new(crm),
            token: token.clone(),
            remaining: Arc::clone(&remaining),
        }),
        LinkProfile::lan(),
        WireFormat::Native,
    )
    .unwrap();
    sys.add_source(
        Arc::new(CancelAfter {
            inner: RelationalConnector::new(orders),
            token: token.clone(),
            remaining,
        }),
        LinkProfile::wan(),
        WireFormat::Native,
    )
    .unwrap();
    (Arc::new(sys), token)
}

fn unique_rows() -> impl Strategy<Value = Vec<(i64, String, i64)>> {
    proptest::collection::btree_map(0i64..200, ("[a-d]{1,6}", -50i64..50), 0..25)
        .prop_map(|m| m.into_iter().map(|(id, (n, s))| (id, n, s)).collect())
}

/// A small predicate grammar over (id, name, score).
fn predicates() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        (0i64..200).prop_map(|k| format!("id < {k}")),
        (-50i64..50).prop_map(|k| format!("score >= {k}")),
        "[a-d]{1,3}".prop_map(|s| format!("name LIKE '{s}%'")),
        (0i64..200).prop_map(|k| format!("id = {k}")),
        Just("name IS NOT NULL".to_string()),
        (-50i64..50).prop_map(|k| format!("score BETWEEN {} AND {}", k - 10, k + 10)),
    ];
    proptest::collection::vec(atom, 1..3).prop_flat_map(|atoms| {
        prop_oneof![Just("AND"), Just("OR")].prop_map(move |op| {
            atoms
                .iter()
                .map(|a| format!("({a})"))
                .collect::<Vec<_>>()
                .join(&format!(" {op} "))
        })
    })
}

fn sorted(batch: &Batch) -> Vec<Row> {
    let mut rows = batch.rows().to_vec();
    rows.sort();
    rows
}

fn run(sys: &EiiSystem, sql: &str) -> Batch {
    sys.execute(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .rows()
        .unwrap()
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant: every optimization ablation returns exactly
    /// the rows the naive plan returns.
    #[test]
    fn optimized_equals_naive_on_filters(rows in unique_rows(), pred in predicates()) {
        let sql = format!("SELECT id, name FROM crm.customers WHERE {pred}");
        let (sys, _) = system_with_customers(&rows);
        let optimized = run(&sys, &sql);
        let naive_sys = {
            let (s, _) = system_with_customers(&rows);
            s.with_config(PlannerConfig::naive())
        };
        let naive = run(&naive_sys, &sql);
        prop_assert_eq!(sorted(&optimized), sorted(&naive));
    }

    /// Joins agree too, including the join-reorder and bind-join paths.
    #[test]
    fn optimized_equals_naive_on_joins(rows in unique_rows(), pred in predicates()) {
        let sql = format!(
            "SELECT c.name, o.total FROM crm.customers c \
             JOIN sales.orders o ON c.id = o.customer_id WHERE {pred}"
        );
        let (sys, _) = system_with_customers(&rows);
        let optimized = run(&sys, &sql);
        let naive_sys = {
            let (s, _) = system_with_customers(&rows);
            s.with_config(PlannerConfig::naive())
        };
        let naive = run(&naive_sys, &sql);
        prop_assert_eq!(sorted(&optimized), sorted(&naive));
    }

    /// Aggregates agree between plans and with a hand computation.
    #[test]
    fn aggregates_match_oracle(rows in unique_rows()) {
        let (sys, _) = system_with_customers(&rows);
        let batch = run(&sys, "SELECT COUNT(*) AS n, SUM(score) AS s FROM crm.customers");
        prop_assert_eq!(batch.rows()[0].get(0), &Value::Int(rows.len() as i64));
        if rows.is_empty() {
            prop_assert_eq!(batch.rows()[0].get(1), &Value::Null);
        } else {
            let total: i64 = rows.iter().map(|(_, _, s)| *s).sum();
            prop_assert_eq!(batch.rows()[0].get(1), &Value::Int(total));
        }
    }

    /// ORDER BY returns rows in key order regardless of plan shape.
    #[test]
    fn sort_is_correct(rows in unique_rows()) {
        let (sys, _) = system_with_customers(&rows);
        let batch = run(&sys, "SELECT score FROM crm.customers ORDER BY score DESC");
        let scores: Vec<i64> = batch.rows().iter().map(|r| r.get(0).as_int().unwrap()).collect();
        let mut expected = scores.clone();
        expected.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(scores, expected);
    }

    /// A copy ETL job converges the warehouse to the source under both
    /// refresh modes, whatever mutations happen in between.
    #[test]
    fn warehouse_converges_to_source(
        rows in unique_rows(),
        extra in proptest::collection::btree_map(200i64..300, ("[a-d]{1,4}", -50i64..50), 0..8)
            .prop_map(|m| m.into_iter().map(|(id, (n, s))| (id, n, s)).collect::<Vec<_>>()),
        incremental in any::<bool>(),
    ) {
        let (sys, clock) = system_with_customers(&rows);
        let mut wh = Warehouse::new("wh", sys.federation().clone(), clock);
        wh.add_job(EtlJob::copy("copy", "crm.customers", "customers").with_key("id")).unwrap();
        wh.refresh("copy", RefreshMode::Full).unwrap();

        // Mutate the source.
        for (id, name, score) in &extra {
            sys.federation().source("crm").unwrap().update(&eii::federation::UpdateOp::Insert {
                table: "customers".into(),
                row: row![*id, name.clone(), *score],
            }).unwrap();
        }
        let mode = if incremental { RefreshMode::Incremental } else { RefreshMode::Full };
        wh.refresh("copy", mode).unwrap();

        let live = run(&sys, "SELECT id, name, score FROM crm.customers");
        let handle = wh.database().table("customers").unwrap();
        let mut warehouse_rows = handle.read().all_rows();
        warehouse_rows.sort();
        prop_assert_eq!(sorted(&live), warehouse_rows);
    }

    /// Expression SQL rendering round-trips through the parser.
    #[test]
    fn predicate_sql_round_trips(pred in predicates()) {
        let parsed = eii::sql::parse_expression(&pred).unwrap();
        let rendered = parsed.to_string();
        let reparsed = eii::sql::parse_expression(&rendered).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// `IN (SELECT ...)` agrees with its relational-algebra oracle
    /// (distinct inner join), and `NOT IN` with its complement, on random
    /// data.
    #[test]
    fn in_subquery_matches_join_oracle(rows in unique_rows(), cutoff in -50i64..50) {
        let (sys, _) = system_with_customers(&rows);
        let semi = run(&sys, &format!(
            "SELECT id FROM crm.customers WHERE id IN \
             (SELECT customer_id FROM sales.orders WHERE total >= {cutoff})"
        ));
        let oracle = run(&sys, &format!(
            "SELECT DISTINCT c.id FROM crm.customers c \
             JOIN sales.orders o ON c.id = o.customer_id WHERE o.total >= {cutoff}"
        ));
        prop_assert_eq!(sorted(&semi), sorted(&oracle));

        let anti = run(&sys, &format!(
            "SELECT id FROM crm.customers WHERE id NOT IN \
             (SELECT customer_id FROM sales.orders WHERE total >= {cutoff})"
        ));
        // Complement: semi + anti partition the customers exactly.
        let all = run(&sys, "SELECT id FROM crm.customers");
        prop_assert_eq!(semi.num_rows() + anti.num_rows(), all.num_rows());
        let mut union: Vec<Row> = semi.rows().to_vec();
        union.extend(anti.rows().to_vec());
        union.sort();
        prop_assert_eq!(union, sorted(&all));
    }

    /// Transient faults healed by retries are invisible: a hardened source
    /// behind an outage window returns byte-identical rows to a fault-free
    /// run, whatever the data, predicate, or outage length.
    #[test]
    fn healed_retries_are_invisible_to_results(
        rows in unique_rows(),
        pred in predicates(),
        outage_end in 1i64..60,
    ) {
        let sql = format!(
            "SELECT c.name, o.total FROM crm.customers c \
             JOIN sales.orders o ON c.id = o.customer_id WHERE {pred}"
        );
        let (clean, _) = system_with_customers(&rows);
        let expect = run(&clean, &sql);

        let (sys, _) = system_with_customers(&rows);
        sys.federation()
            .inject_faults("sales", FaultProfile::none().with_outage(0, outage_end))
            .unwrap();
        // Backoff accumulates past 60 ms well before the attempt budget
        // runs out, so every outage in range heals.
        sys.federation()
            .harden(
                "sales",
                RetryPolicy::standard().with_attempts(12),
                CircuitBreakerConfig::default(),
            )
            .unwrap();
        let got = run(&sys, &sql);
        prop_assert_eq!(got.rows(), expect.rows());
        let result = sys.execute(&sql).unwrap();
        prop_assert!(result.query_result().unwrap().fully_live());
    }

    /// Answering queries using views is invisible to results: with a
    /// materialized view over the base table and the semantic result cache
    /// enabled, every query — first run (matview rewrite) and repeat run
    /// (cache hit) — returns row-identical results to a plain federated
    /// system, whatever the data and predicate.
    #[test]
    fn matview_and_cache_answers_equal_federated(rows in unique_rows(), pred in predicates()) {
        let sql = format!("SELECT id, name FROM crm.customers WHERE {pred}");
        let (plain, _) = system_with_customers(&rows);
        let expect = run(&plain, &sql);

        let (sys, _) = system_with_customers(&rows);
        sys.define_matview("mv_all", "SELECT * FROM crm.customers", RefreshPolicy::Manual)
            .unwrap();
        sys.install_result_cache(CacheConfig::default());
        let first = run(&sys, &sql);
        prop_assert_eq!(sorted(&first), sorted(&expect));
        let repeat = run(&sys, &sql);
        prop_assert_eq!(repeat.rows(), first.rows());
    }

    /// Cache invalidation: a write to the base source bumps its change-log
    /// watermark, so the next read misses the cache and sees the new row —
    /// the cache never silently serves pre-write data.
    #[test]
    fn cache_misses_after_base_write(rows in unique_rows(), new_id in 500i64..600) {
        let sql = "SELECT id FROM crm.customers";
        let (sys, _) = system_with_customers(&rows);
        sys.install_result_cache(CacheConfig::default());
        let before = run(&sys, sql);
        run(&sys, sql); // repeat: served from cache
        sys.federation().source("crm").unwrap().update(&eii::federation::UpdateOp::Insert {
            table: "customers".into(),
            row: row![new_id, "newcomer", 0i64],
        }).unwrap();
        let after = run(&sys, sql);
        prop_assert_eq!(after.num_rows(), before.num_rows() + 1);
        prop_assert!(after.rows().iter().any(|r| r.get(0) == &Value::Int(new_id)));
    }

    /// Incremental view maintenance ≡ full recompute at every watermark:
    /// whatever random stream of inserts, updates, and deletes lands on
    /// the base tables — including orders whose nullable join key is NULL,
    /// which must never match (the executor's hash join drops NULL keys) —
    /// each delta-maintained view (stateless pipeline, cross-source join,
    /// grouped aggregate with retraction-sensitive MIN/MAX) holds exactly
    /// the rows a fresh federated execution of its defining query returns
    /// after every refresh.
    #[test]
    fn ivm_equals_recompute_at_every_watermark(
        rows in unique_rows(),
        ops in proptest::collection::vec(
            ((0usize..5, 0i64..200), "[a-d]{1,4}", -50i64..50),
            1..24,
        ),
        refresh_every in 1usize..4,
    ) {
        const VIEWS: [(&str, &str); 4] = [
            ("pv_filter", "SELECT id, name FROM crm.customers WHERE score >= 0"),
            (
                "pv_join",
                "SELECT c.name, o.order_id FROM crm.customers c \
                 JOIN sales.orders o ON c.id = o.customer_id",
            ),
            // Self-join on the nullable column: both key sides can be NULL,
            // and NULL must never join NULL.
            (
                "pv_selfjoin",
                "SELECT a.order_id, b.order_id AS other_id FROM sales.orders a \
                 JOIN sales.orders b ON a.customer_id = b.customer_id",
            ),
            (
                "pv_agg",
                "SELECT name, COUNT(*) AS n, SUM(score) AS s, \
                 MIN(score) AS lo, MAX(score) AS hi \
                 FROM crm.customers GROUP BY name",
            ),
        ];
        let (sys, _) = system_with_customers(&rows);
        // Matview rewrite off so the oracle queries always execute
        // federated against the live base tables, never the views.
        let sys = sys.with_config(PlannerConfig {
            rewrite_matviews: false,
            ..PlannerConfig::optimized()
        });
        for (name, sql) in VIEWS {
            let fallback = sys
                .define_incremental_matview(name, sql, RefreshPolicy::Manual)
                .unwrap();
            prop_assert!(fallback.is_none(), "{name} fell back: {fallback:?}");
        }
        let crm = sys.federation().source("crm").unwrap();
        let sales = sys.federation().source("sales").unwrap();
        let last = ops.len() - 1;
        for (i, ((kind, id), name, score)) in ops.iter().enumerate() {
            // Updates and deletes on absent keys are no-ops; inserts use a
            // disjoint id range so they never collide with the primary key.
            match kind {
                0 => crm.update(&eii::federation::UpdateOp::Insert {
                    table: "customers".into(),
                    row: row![1_000 + i as i64, name.clone(), *score],
                }),
                1 => crm.update(&eii::federation::UpdateOp::UpdateByKey {
                    table: "customers".into(),
                    key: Value::Int(*id),
                    assignments: vec![
                        ("name".into(), Value::from(name.as_str())),
                        ("score".into(), Value::Int(*score)),
                    ],
                }),
                2 => crm.update(&eii::federation::UpdateOp::DeleteByKey {
                    table: "customers".into(),
                    key: Value::Int(*id),
                }),
                // Negative scores insert an order whose join key is NULL:
                // it must never appear in pv_join, maintained or recomputed.
                3 => sales.update(&eii::federation::UpdateOp::Insert {
                    table: "orders".into(),
                    row: row![
                        2_000 + i as i64,
                        if *score < 0 { Value::Null } else { Value::Int(*id) },
                        *score as f64
                    ],
                }),
                _ => sales.update(&eii::federation::UpdateOp::DeleteByKey {
                    table: "orders".into(),
                    key: Value::Int(*id),
                }),
            }
            .unwrap();
            if (i + 1) % refresh_every != 0 && i != last {
                continue;
            }
            let mgr = sys.matviews().expect("views defined");
            for (name, sql) in VIEWS {
                sys.refresh_matview(name).unwrap();
                let maintained = mgr.cached(name).unwrap().expect("view materialized");
                let recomputed = run(&sys, sql);
                prop_assert_eq!(
                    sorted(&maintained),
                    sorted(&recomputed),
                    "IVM ≢ recompute for {} after op {}",
                    name,
                    i
                );
                let status = mgr.ivm_status(name).unwrap();
                prop_assert!(status.incremental, "{} lost its IVM state", name);
            }
        }
    }

    /// Concurrency is invisible to results: N sessions over one shared
    /// `Arc<EiiSystem>` — racing reads against matview refreshes and cache
    /// invalidations — each see exactly the rows a serial run returns,
    /// whatever the data, predicate, and session count.
    #[test]
    fn concurrent_sessions_equal_serial(
        rows in unique_rows(),
        pred in predicates(),
        sessions in 2usize..6,
    ) {
        let sql = format!("SELECT id, name FROM crm.customers WHERE {pred}");
        let (serial, _) = system_with_customers(&rows);
        serial
            .define_matview("mv_all", "SELECT * FROM crm.customers", RefreshPolicy::Manual)
            .unwrap();
        serial.install_result_cache(CacheConfig::default());
        let expect = sorted(&run(&serial, &sql));

        let (sys, _) = system_with_customers(&rows);
        sys.define_matview("mv_all", "SELECT * FROM crm.customers", RefreshPolicy::Manual)
            .unwrap();
        sys.install_result_cache(CacheConfig::default());
        let sys = Arc::new(sys);
        let got: Vec<(Vec<Row>, Vec<Row>)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for i in 0..sessions {
                let sys = Arc::clone(&sys);
                let sql = sql.clone();
                handles.push(scope.spawn(move || {
                    let session = sys.session().with_label(&format!("s{i}"));
                    // Mixed workload: refreshes and invalidations race the
                    // reads (neither changes the base data).
                    if i % 2 == 0 {
                        sys.refresh_matview("mv_all").unwrap();
                    }
                    let a = sorted(session.execute(&sql).unwrap().rows().unwrap());
                    if i % 3 == 0 {
                        sys.invalidate_cached("crm.customers");
                    }
                    let b = sorted(session.execute(&sql).unwrap().rows().unwrap());
                    (a, b)
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (a, b) in &got {
            prop_assert_eq!(a, &expect);
            prop_assert_eq!(b, &expect);
        }
    }

    /// Cancellation is clean at *every* point: wherever the cancel lands in
    /// a plan's connector-call sequence, the query either finishes with the
    /// exact uncancelled answer or fails with the typed `cancelled` error;
    /// the cancelled run never ships more bytes than the uncancelled run;
    /// and the system stays healthy — a fresh session immediately gets the
    /// full answer again.
    #[test]
    fn cancellation_is_clean_at_every_point(
        rows in unique_rows(),
        pred in predicates(),
        cancel_after in 0i64..12,
    ) {
        let sql = format!(
            "SELECT c.name, o.total FROM crm.customers c \
             JOIN sales.orders o ON c.id = o.customer_id WHERE {pred}"
        );
        // Oracle: the uncancelled run's answer and traffic.
        let (clean, _) = system_with_customers(&rows);
        let expect = run(&clean, &sql);
        let clean_bytes = clean.federation().ledger().total().bytes;

        let (sys, token) = cancellable_system(&rows, cancel_after);
        let session = sys.session().with_cancel_token(token.clone());
        match session.execute(&sql) {
            Ok(out) => {
                // The cancel point fell past the last fetch (or was never
                // reached): the answer must be the uncancelled one, exactly.
                let got = out.rows().unwrap().clone();
                prop_assert_eq!(sorted(&got), sorted(&expect));
            }
            Err(e) => prop_assert_eq!(e.kind(), "cancelled"),
        }
        let bytes = sys.federation().ledger().total().bytes;
        prop_assert!(
            bytes <= clean_bytes,
            "cancelled run shipped {bytes} bytes, uncancelled only {clean_bytes}"
        );
        // No poisoned state: a session without the tripped token gets the
        // complete answer from the same system.
        let retry = sys.session().execute(&sql);
        prop_assert!(retry.is_ok(), "system unusable after cancel: {:?}", retry.err());
        let again = retry.unwrap().rows().unwrap().clone();
        prop_assert_eq!(sorted(&again), sorted(&expect));
    }

    /// Cancelled jobs release their admission permits: with one worker slot
    /// per source, any mix of queued/running cancellations must leave the
    /// scheduler able to run a probe query to completion afterwards.
    #[test]
    fn cancelled_jobs_release_scheduler_permits(
        rows in unique_rows(),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..7),
    ) {
        let sql = "SELECT c.name, o.total FROM crm.customers c \
                   JOIN sales.orders o ON c.id = o.customer_id";
        let (sys, _) = system_with_customers(&rows);
        let sys = Arc::new(sys);
        let scheduler =
            sys.scheduler(AdmissionConfig::with_workers(2).with_source_permits(1));
        let mut tickets = Vec::new();
        for &kill in &cancel_mask {
            let (ticket, _) = scheduler
                .submit_prioritized(sql, &ExecOptions::default())
                .expect("no brownout configured: admission always accepts");
            if kill {
                // Races the worker on purpose: removed from the queue if
                // still pending, cooperative teardown if already running.
                ticket.cancel("proptest abort");
            }
            tickets.push(ticket);
        }
        for ticket in tickets {
            match ticket.join() {
                Ok(_) => {}
                Err(e) => prop_assert_eq!(e.kind(), "cancelled"),
            }
        }
        // Every permit must be back: the probe would hang (or reject) on a
        // leaked worker slot or source permit.
        let probe = scheduler.submit(sql, "public").join();
        prop_assert!(probe.is_ok(), "probe after cancellations: {:?}", probe.err());
        let stats = scheduler.finish();
        prop_assert!(stats.completed >= 1);
    }

    /// Cancelling a partitioned scan strands nothing: sibling partitions
    /// stop at their next check, total traffic never exceeds the
    /// uncancelled scan's, and no orphaned worker keeps shipping bytes
    /// after the call returns.
    #[test]
    fn cancelled_partition_scans_leak_nothing(
        rows in unique_rows(),
        cancel_after in 1i64..5,
    ) {
        let q = eii::federation::SourceQuery::full_table("customers");
        let (clean, _) = system_with_customers(&rows);
        let clean_handle = clean.federation().source("crm").unwrap();
        let (clean_batch, _) = clean_handle.query_partitioned(&q, 4).unwrap();
        let clean_bytes = clean.federation().ledger().total().bytes;

        let (sys, token) = cancellable_system(&rows, cancel_after);
        let handle = sys.federation().source("crm").unwrap();
        let ctx = RequestCtx::new().with_cancel(token.clone());
        match handle.query_partitioned_ctx(&q, 4, &ctx) {
            Ok((batch, _)) => prop_assert_eq!(batch.rows(), clean_batch.rows()),
            Err(e) => prop_assert_eq!(e.kind(), "cancelled"),
        }
        let bytes = sys.federation().ledger().total().bytes;
        prop_assert!(
            bytes <= clean_bytes,
            "cancelled partitioned scan shipped {bytes} bytes vs {clean_bytes}"
        );
        // All partition workers are joined on return; traffic is frozen.
        for _ in 0..4 {
            std::thread::yield_now();
        }
        prop_assert_eq!(sys.federation().ledger().total().bytes, bytes);
    }

    /// Self-tuning is invisible to correctness: with the advisor enabled
    /// under a deliberately twitchy config (cycle every 3 statements, one
    /// execution qualifies a candidate, an unreachable 0.99 hit-rate floor
    /// so installed views are evicted mid-stream, and a low re-planning
    /// divergence factor), every query in a random query/write workload
    /// returns exactly the rows the untuned system returns — including
    /// statements that run against views the advisor installed, and
    /// statements that run right after it evicted them.
    #[test]
    fn advisor_never_changes_answers(
        rows in unique_rows(),
        workload in proptest::collection::vec((0usize..6, 0i64..100), 1..32),
    ) {
        // IVM-eligible shapes only (no ORDER BY / DISTINCT / LIMIT): the
        // advisor installs candidates as live incrementally-maintained
        // views, so these are the queries it can actually act on.
        const QUERIES: [&str; 4] = [
            "SELECT id, name FROM crm.customers WHERE score >= 0",
            "SELECT c.name, o.total FROM crm.customers c \
             JOIN sales.orders o ON c.id = o.customer_id",
            "SELECT name, COUNT(*) AS n FROM crm.customers GROUP BY name",
            "SELECT order_id, total FROM sales.orders WHERE total >= 10.0",
        ];
        let (tuned, _) = system_with_customers(&rows);
        let (baseline, _) = system_with_customers(&rows);
        prop_assert!(tuned.enable_advisor(AdvisorConfig {
            advise_every: 3,
            min_count: 1,
            grace_statements: 4,
            min_hit_rate: 0.99,
            replan_factor: 1.5,
            ..AdvisorConfig::default()
        }));
        for (i, &(op, key)) in workload.iter().enumerate() {
            match op {
                4 => {
                    // Identical write through both federations; disjoint id
                    // range so inserts never collide with the primary key.
                    for sys in [&tuned, &baseline] {
                        sys.federation()
                            .source("crm")
                            .unwrap()
                            .update(&eii::federation::UpdateOp::Insert {
                                table: "customers".into(),
                                row: row![10_000 + i as i64, "w", key],
                            })
                            .unwrap();
                    }
                }
                5 => {
                    for sys in [&tuned, &baseline] {
                        sys.federation()
                            .source("sales")
                            .unwrap()
                            .update(&eii::federation::UpdateOp::Insert {
                                table: "orders".into(),
                                row: row![20_000 + i as i64, key % 200, (key % 50) as f64],
                            })
                            .unwrap();
                    }
                }
                q => {
                    let sql = QUERIES[q % QUERIES.len()];
                    // Row order may legitimately differ once a view serves
                    // the query (IVM appends deltas); the row *set* with
                    // multiplicity must be identical.
                    prop_assert_eq!(
                        sorted(&run(&tuned, sql)),
                        sorted(&run(&baseline, sql)),
                        "advisor changed answers for {} (advisor state:\n{})",
                        sql,
                        tuned.advisor_report()
                    );
                }
            }
        }
    }

    /// Vectorized columnar execution ≡ row-at-a-time interpretation: with
    /// the same optimized planner config, flipping only `vectorize` returns
    /// byte-identical batches — values, row order, and degradation flags —
    /// across filters, arithmetic projections, equi-joins over NULL-heavy
    /// keys (NULL must never join on either path), grouped and global
    /// aggregates, and dead-source fallback runs where the answer is
    /// served stale and flagged DEGRADED.
    #[test]
    fn vectorized_equals_row_at_a_time(
        rows in unique_rows(),
        pred in predicates(),
        null_orders in proptest::collection::vec((-50i64..50, 0i64..200), 0..8),
        shape in 0usize..6,
        degrade in any::<bool>(),
    ) {
        let sql = match shape {
            0 => format!("SELECT id, name FROM crm.customers WHERE {pred}"),
            1 => format!(
                "SELECT c.name, o.total FROM crm.customers c \
                 JOIN sales.orders o ON c.id = o.customer_id WHERE {pred}"
            ),
            2 => format!(
                "SELECT name, COUNT(*) AS n, SUM(score) AS s, AVG(score) AS a, \
                 MIN(score) AS lo, MAX(score) AS hi \
                 FROM crm.customers WHERE {pred} GROUP BY name"
            ),
            3 => "SELECT c.name, COUNT(*) AS n, SUM(o.total) AS s \
                  FROM crm.customers c JOIN sales.orders o ON c.id = o.customer_id \
                  GROUP BY c.name"
                .to_string(),
            4 => "SELECT COUNT(*) AS n, SUM(total) AS s, AVG(total) AS a \
                  FROM sales.orders WHERE total >= 40.0"
                .to_string(),
            _ => format!(
                "SELECT id, score * 2 + 1 AS s2, score % 7 AS m \
                 FROM crm.customers WHERE {pred}"
            ),
        };
        let build = |vectorize: bool| {
            let (sys, clock) = system_with_customers(&rows);
            let sys = sys.with_config(PlannerConfig {
                vectorize,
                ..PlannerConfig::optimized()
            });
            // NULL-heavy join keys: negative first components insert orders
            // whose customer_id is NULL.
            for (i, &(score, id)) in null_orders.iter().enumerate() {
                sys.federation()
                    .source("sales")
                    .unwrap()
                    .update(&eii::federation::UpdateOp::Insert {
                        table: "orders".into(),
                        row: row![
                            5_000 + i as i64,
                            if score < 0 { Value::Null } else { Value::Int(id) },
                            (score % 50) as f64
                        ],
                    })
                    .unwrap();
            }
            if degrade {
                sys.snapshot_fallback("sales.orders").unwrap();
                clock.advance_ms(1_000);
                sys.federation()
                    .inject_faults("sales", FaultProfile::failing(1.0, 7))
                    .unwrap();
                sys.set_degradation_policy(DegradationPolicy::Fallback);
            }
            sys
        };
        let on_out = build(true).execute(&sql).unwrap();
        let off_out = build(false).execute(&sql).unwrap();
        let on = on_out.query_result().unwrap();
        let off = off_out.query_result().unwrap();
        // Exact equality, not set equality: the columnar operators promise
        // the row path's output order, byte for byte.
        prop_assert_eq!(on.batch.rows(), off.batch.rows());
        prop_assert_eq!(on.batch.schema(), off.batch.schema());
        let flags = |r: &eii::exec::QueryResult| -> Vec<(String, Option<i64>)> {
            r.degraded
                .iter()
                .map(|d| (d.source.clone(), d.stale_ms))
                .collect()
        };
        prop_assert_eq!(flags(on), flags(off));
        // When the dead source was actually consulted, both paths must
        // agree it was flagged (a plan over an empty probe side may
        // legitimately never touch sales at all).
        prop_assert_eq!(on.fully_live(), off.fully_live());
    }

    /// LIMIT never yields more rows than asked, and the prefix matches the
    /// unlimited ordering.
    #[test]
    fn limit_is_a_prefix(rows in unique_rows(), n in 0usize..10) {
        let (sys, _) = system_with_customers(&rows);
        let all = run(&sys, "SELECT id FROM crm.customers ORDER BY id");
        let limited = run(&sys, &format!("SELECT id FROM crm.customers ORDER BY id LIMIT {n}"));
        prop_assert!(limited.num_rows() <= n);
        prop_assert_eq!(
            limited.rows(),
            &all.rows()[..limited.num_rows()]
        );
    }
}

/// Operator-tree skeleton shared by physical plans and span trees.
#[derive(Debug, Clone, PartialEq)]
struct OpTree {
    label: String,
    children: Vec<OpTree>,
}

fn plan_optree(plan: &eii::planner::PhysicalPlan) -> OpTree {
    OpTree {
        label: plan.label().to_string(),
        children: plan.children().into_iter().map(plan_optree).collect(),
    }
}

/// Project a span subtree onto operator spans only: `op:<label>` spans
/// keep their label, synthetic spans (`hedge:backup`) are dropped — they
/// annotate a fetch, they are not plan operators.
fn span_optree(span: &eii::obs::SpanRecord) -> Option<OpTree> {
    let label = span.name.strip_prefix("op:")?;
    Some(OpTree {
        label: label.to_string(),
        children: span.children.iter().filter_map(span_optree).collect(),
    })
}

fn find_span<'a>(
    spans: &'a [eii::obs::SpanRecord],
    name: &str,
) -> Option<&'a eii::obs::SpanRecord> {
    for span in spans {
        if span.name == name {
            return Some(span);
        }
        if let Some(found) = find_span(&span.children, name) {
            return Some(found);
        }
    }
    None
}

/// The physical plan the engine would pick for `sql`, built through the
/// same public pipeline the facade uses (parse → build → optimize →
/// physical), independent of any execution.
fn physical_plan_for(sys: &EiiSystem, sql: &str) -> eii::planner::PhysicalPlan {
    let Ok(eii::sql::Statement::Query(q)) = eii::sql::parse_statement(sql) else {
        panic!("not a query: {sql}");
    };
    let logical = eii::planner::PlanBuilder::new(sys.catalog(), sys.federation())
        .build(&q)
        .unwrap();
    let optimized = eii::planner::optimize(logical, sys.federation(), sys.config()).unwrap();
    eii::planner::PhysicalPlanner::new(sys.federation(), sys.config())
        .create(optimized)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tracer's `op:` span tree under `execute` is isomorphic (same
    /// shape, same operator labels) to the physical plan's operator tree,
    /// across query shapes — with and without hedged backup fetches, whose
    /// extra `hedge:backup` child spans must not disturb the skeleton.
    #[test]
    fn span_tree_is_isomorphic_to_physical_plan(
        rows in unique_rows(),
        pred in predicates(),
        shape in 0usize..6,
        hedge in 0usize..2,
    ) {
        let sql = match shape {
            0 => format!("SELECT id, name FROM crm.customers WHERE {pred}"),
            1 => format!(
                "SELECT c.name, o.total FROM crm.customers c \
                 JOIN sales.orders o ON c.id = o.customer_id WHERE {pred}"
            ),
            2 => format!(
                "SELECT name, score FROM crm.customers WHERE {pred} \
                 ORDER BY score DESC LIMIT 5"
            ),
            3 => "SELECT name, COUNT(*) AS n FROM crm.customers GROUP BY name".to_string(),
            4 => format!("SELECT DISTINCT name FROM crm.customers WHERE {pred}"),
            _ => format!(
                "SELECT id FROM crm.customers WHERE {pred} \
                 UNION ALL SELECT order_id FROM sales.orders"
            ),
        };
        let hedged = hedge == 1;
        let (sys, _) = system_with_customers(&rows);
        let sys = Arc::new(sys);
        if hedged {
            sys.set_hedge_policy(HedgePolicy {
                threshold_ms: 0.0,
                delay_ms: 0.5,
            });
            // Prime per-source latency history: the first fetch per source
            // is never hedged.
            sys.execute("SELECT id FROM crm.customers").unwrap();
            sys.execute("SELECT order_id FROM sales.orders").unwrap();
        }
        let expected = plan_optree(&physical_plan_for(&sys, &sql));
        let session = sys.session();
        session.execute(&sql).unwrap();
        let trace = session.last_trace().expect("executed statements leave a trace");
        let exec_span = find_span(&trace.spans, "execute").expect("execute span present");
        let roots: Vec<OpTree> = exec_span.children.iter().filter_map(span_optree).collect();
        prop_assert_eq!(roots, vec![expected]);
    }
}
